package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/store/backend"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/txlog"
	"wren/internal/wire"
)

// Default protocol timer intervals. The paper runs its stabilization
// protocols every 5 milliseconds (§V-A).
const (
	DefaultApplyInterval  = 5 * time.Millisecond
	DefaultGossipInterval = 5 * time.Millisecond
	DefaultGCInterval     = 500 * time.Millisecond
	DefaultTxContextTTL   = 30 * time.Second
)

// recoveryGrace is how long a prepare recovered from the transaction log
// waits for its re-driven 2PC outcome after a restart before the cohort
// starts probing the coordinator with TxStatusReq (and between re-probes).
// A recovered prepare is only ever aborted on the coordinator's explicit
// "not committed" answer — a timeout alone cannot distinguish a doomed
// prepare from a durably-decided transaction whose coordinator is slow to
// come back. Recovered prepares do NOT hold back the apply upper bound
// while they wait.
const recoveryGrace = 15 * time.Second

// redriveAfter is how old an unresolved commit decision must be before
// the coordinator re-sends its CommitTx to the cohorts that have not
// acknowledged a durable outcome — recovering from a CommitTx or ack lost
// to a cohort crash without waiting for this coordinator to restart.
const redriveAfter = 5 * time.Second

// resendBatchSize bounds how many recovered transactions one resync
// Replicate message carries.
const resendBatchSize = 128

// lifecycleInterval is the period of the transaction-lifecycle maintenance
// loop (status probes for recovered prepares, re-drives of unresolved
// decisions). It runs on its own timer, NOT the GC loop's: GC is an
// optional subsystem (GCInterval <= 0 disables it) and 2PC termination
// must not be.
const lifecycleInterval = time.Second

// seqBlockSize is how many transaction sequence numbers a server reserves
// from its transaction log at a time. Ids must be reserved durably BEFORE
// use — an id handed out at StartTx can reach a cohort's durable log even
// if this server crashes before logging anything itself — and block
// reservation amortizes that to one log record (one fsync under
// fsync=always) per million transactions.
const seqBlockSize = 1 << 20

// ServerConfig configures one Wren partition server p_n^m.
type ServerConfig struct {
	// DC is the server's data center index m (0-based).
	DC int
	// Partition is the server's partition index n (0-based).
	Partition int
	// NumDCs is the number of replication sites M.
	NumDCs int
	// NumPartitions is the number of partitions per DC, N.
	NumPartitions int
	// Network delivers messages between nodes.
	Network transport.Network
	// ClockSource supplies physical time; distinct servers get distinct,
	// possibly skewed sources. Nil means the system clock.
	ClockSource hlc.Source
	// ApplyInterval is ΔR: how often committed transactions are applied and
	// replicated (Algorithm 4). Zero selects DefaultApplyInterval.
	ApplyInterval time.Duration
	// GossipInterval is ΔG: how often BiST stabilization gossip runs.
	// Zero selects DefaultGossipInterval.
	GossipInterval time.Duration
	// GCInterval is how often version-chain garbage collection runs.
	// Zero selects DefaultGCInterval; negative disables GC.
	GCInterval time.Duration
	// TxContextTTL bounds how long an inactive transaction context is kept
	// before being expired (a backstop for abandoned sessions). Zero
	// selects DefaultTxContextTTL.
	TxContextTTL time.Duration
	// BlockingCommit enables an ablation of CANToR: instead of relying on
	// the client-side cache, the coordinator delays the commit reply until
	// the commit timestamp is covered by the local stable snapshot — the
	// "simple solution" the paper rejects for its high commit latency
	// (§III-B). Off in the real protocol.
	BlockingCommit bool
	// GossipTree organizes the BiST exchange as an aggregation tree rooted
	// at partition 0 (paper §IV-B) instead of all-to-all broadcast:
	// 2(N−1) messages per round instead of N(N−1), at the cost of one
	// extra hop of staleness.
	GossipTree bool
	// StoreShards is the number of lock stripes in the version store.
	// Zero selects store.DefaultShards; the value is rounded up to a power
	// of two. More shards reduce lock contention on many-core machines.
	StoreShards int
	// StoreBackend selects the storage engine: backend.Memory (the ""
	// default) keeps versions only in memory; backend.WAL adds per-shard
	// append-only logs that are replayed on restart; backend.SST is the
	// memtable+sorted-run engine (WAL over the active memtable only,
	// immutable runs serving snapshot reads lock-free, merge compaction).
	StoreBackend string
	// DataDir is the root directory durable backends write under. The
	// server uses DataDir/dc<m>-p<n>, so servers of one deployment can
	// share a root. Required when StoreBackend is backend.WAL or
	// backend.SST.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never". Ignored by the memory backend.
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log that
	// durable backends get by default. With the log, PREPARE and
	// COMMIT records are written before the corresponding acknowledgement
	// leaves the server — the durability unit becomes the ACKNOWLEDGED
	// transaction — and a persisted per-DC replication cursor lets a
	// restarted server re-send the unreplicated tail. Without it the
	// durability unit regresses to the applied transaction (the pre-txlog
	// behaviour, kept for benchmarking the commit-logging cost). Ignored
	// by the memory backend, which has nowhere durable to recover from.
	DisableTxLog bool
}

func (c *ServerConfig) fillDefaults() {
	if c.ClockSource == nil {
		c.ClockSource = hlc.SystemSource{}
	}
	if c.ApplyInterval == 0 {
		c.ApplyInterval = DefaultApplyInterval
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.TxContextTTL == 0 {
		c.TxContextTTL = DefaultTxContextTTL
	}
}

func (c *ServerConfig) validate() error {
	if c.NumDCs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("core: invalid topology %dx%d", c.NumDCs, c.NumPartitions)
	}
	if c.DC < 0 || c.DC >= c.NumDCs {
		return fmt.Errorf("core: DC %d out of range [0,%d)", c.DC, c.NumDCs)
	}
	if c.Partition < 0 || c.Partition >= c.NumPartitions {
		return fmt.Errorf("core: partition %d out of range [0,%d)", c.Partition, c.NumPartitions)
	}
	if c.Network == nil {
		return fmt.Errorf("core: network is required")
	}
	if c.StoreShards < 0 || c.StoreShards > store.MaxShards {
		return fmt.Errorf("core: store shards %d out of range [0,%d]", c.StoreShards, store.MaxShards)
	}
	if err := backend.Validate(c.StoreBackend, c.DataDir, c.FsyncPolicy); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// engineDir is the per-server subdirectory of DataDir a durable backend
// writes to, so all servers of a deployment can share one root.
func (c *ServerConfig) engineDir() string {
	if c.DataDir == "" {
		return ""
	}
	return filepath.Join(c.DataDir, fmt.Sprintf("dc%d-p%d", c.DC, c.Partition))
}

// txContext is the coordinator-side state of an open transaction
// (TX[id_T] in Algorithm 2). It is a value type stored in a striped map
// keyed by TxID, so looking one up on the read path touches only the
// stripe its TxID hashes to — never writer state.
type txContext struct {
	lt      hlc.Timestamp
	rt      hlc.Timestamp
	created time.Time
}

// preparedTx is a transaction in the pending list: prepared but not yet
// committed (Algorithm 3, line 18).
type preparedTx struct {
	pt     hlc.Timestamp // proposed commit timestamp
	rst    hlc.Timestamp // transaction's remote snapshot time
	writes []wire.KV
}

// committedTx is a transaction in the commit list, waiting to be applied
// in commit-timestamp order (Algorithm 3, line 24).
type committedTx struct {
	txID   uint64
	ct     hlc.Timestamp
	rst    hlc.Timestamp
	writes []wire.KV
}

// prepareVote is one cohort's answer in the 2PC: a proposed commit
// timestamp, or a refusal (non-empty err) from a cohort whose durability
// is degraded.
type prepareVote struct {
	pt  hlc.Timestamp
	err string
}

// prepareCall collects PrepareResp messages for one committing transaction.
type prepareCall struct {
	ch chan prepareVote
}

// recoveredPrepare is a prepare replayed from the transaction log after a
// restart: its 2PC outcome is unknown until a coordinator re-drives it or
// a TxStatusResp settles it. It is kept out of s.prepared so it cannot
// hold the apply upper bound — and therefore the stable snapshot — back
// while it waits; nextProbe paces the status queries.
type recoveredPrepare struct {
	tx        *txlog.PreparedTx
	nextProbe time.Time
}

// cantorPred is the CANToR visibility predicate (Algorithm 3 lines 7–8) in
// reusable form: a pooled readScratch binds its visible method once, so a
// slice read updates three fields instead of allocating a fresh closure.
type cantorPred struct {
	localDC uint8
	lt, rt  hlc.Timestamp
}

func (p *cantorPred) visible(v *store.Version) bool {
	if v.SrcDC == p.localDC {
		return v.UT <= p.lt && v.RDT <= p.rt
	}
	return v.UT <= p.rt && v.RDT <= p.lt
}

// readScratch is the pooled per-read working set: the bound visibility
// predicate and the version result buffer handed to the engine's
// caller-buffer batch read. With it, a slice read allocates nothing in
// steady state.
type readScratch struct {
	pred    cantorPred
	visible store.VisibleFunc
	vers    []*store.Version
}

// Metrics exposes server-side counters for tests and the benchmark harness.
type Metrics struct {
	TxStarted     stats.Counter
	TxCommitted   stats.Counter
	SlicesServed  stats.Counter
	ReplTxApplied stats.Counter
	GCRemoved     stats.Counter
	GCKeysDropped stats.Counter
	CtxExpired    stats.Counter
}

// Server is one Wren partition server p_n^m.
//
// The state is split so that the read path — handleStartTx, handleTxRead,
// handleSliceReq, handleSliceResp — never acquires the server-wide mutex:
// the stable times are atomically published scalars, per-request
// bookkeeping lives in striped maps keyed by TxID/ReqID, and per-read
// working memory comes from pools. s.mu guards only writer state (the
// pending/commit lists, the version vector, gossip aggregation arrays),
// so reads never wait behind commits, replication applies or BiST gossip —
// the paper's nonblocking-read property held at the implementation level.
type Server struct {
	cfg   ServerConfig
	id    transport.NodeID
	clock *hlc.Clock
	st    store.Engine

	// tl is the durable transaction-lifecycle log (nil for the memory
	// backend or when disabled): commit records ahead of acknowledgements,
	// the per-DC replication cursor, and restart recovery state.
	tl *txlog.Log
	// resendTails[dc] is the unreplicated committed tail snapshotted at
	// construction time — BEFORE any new commit or acknowledgement can
	// race the snapshot — for recoveryResend to replay; the txlog's
	// cursor stays pinned below each tail until its resync is confirmed.
	resendTails [][]*txlog.CommittedTx
	// resyncTailSent[dc] flips once recoveryResend has enqueued dc's tail;
	// resyncDone[dc] (touched only by the single applyTick goroutine)
	// gates ordinary replication to dc: until the tail is on the FIFO
	// link, no new batch or heartbeat may overtake it — the peer's version
	// vector would advance past transactions it has not received, a
	// transient causal hole. The transition tick ships a dedupe-safe
	// catch-up of everything still unconfirmed, then normal replication
	// resumes.
	resyncTailSent []atomic.Bool
	resyncDone     []bool
	// seqLimit is the durably reserved transaction-sequence ceiling;
	// seqMu serializes block refills (see seqBlockSize).
	seqLimit atomic.Uint64
	seqMu    sync.Mutex

	// lst/rst are the stable times (LST, RST): lock-free monotonic
	// max-merge publication, loaded on every read.
	lst hlc.AtomicTimestamp
	rst hlc.AtomicTimestamp

	// txCtx and pendingSlice are read-path bookkeeping: open transaction
	// contexts and in-flight slice-read fan-ins.
	txCtx        *stripemap.Map[txContext]
	pendingSlice *stripemap.Map[*fanin.TxRead]

	// snapMu makes snapshot assignment atomic with respect to GC's
	// oldest-snapshot computation. StartTx holds it SHARED around
	// (load lst → store context) — concurrent transaction starts never
	// serialize on it — while gcTick takes it exclusively for one load:
	// the barrier guarantees every context whose lt predates the GC
	// floor is visible to the sweep, so GC can never prune a version a
	// just-started transaction's snapshot still needs. A writer touches
	// it twice per second; readers share it, which keeps the read path's
	// no-plain-Mutex property intact.
	snapMu sync.RWMutex

	// readPool holds readScratch, fanPool holds fanoutScratch.
	readPool sync.Pool
	fanPool  sync.Pool

	mu            sync.Mutex
	vv            []hlc.Timestamp // version vector: vv[m] is the local version clock
	prepared      map[uint64]*preparedTx
	recovered     map[uint64]*recoveredPrepare // txlog prepares awaiting a re-driven outcome
	committed     []*committedTx
	peerLocal     []hlc.Timestamp // per-partition gossiped local version clocks
	peerRemoteMin []hlc.Timestamp // per-partition gossiped min remote entries
	peerOldest    []hlc.Timestamp // per-partition gossiped oldest active snapshots

	pendingPrepare map[uint64]*prepareCall

	reqSeq  atomic.Uint64
	txSeq   atomic.Uint64
	metrics Metrics

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	reqWG     sync.WaitGroup

	// drainMu orders goAsync's draining check + reqWG.Add against Stop's
	// draining=true + reqWG.Wait: without it, an Add could race Wait at
	// counter zero (a documented WaitGroup misuse that panics). Only the
	// commit path touches it; reads no longer use goAsync at all.
	drainMu  sync.Mutex
	draining bool // guarded by drainMu; set during Stop
}

// NewServer constructs a Wren partition server. Call Start to register it
// on the network and launch its background protocols.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := backend.Open(backend.Options{
		Backend: cfg.StoreBackend,
		Shards:  cfg.StoreShards,
		DataDir: cfg.engineDir(),
		Fsync:   cfg.FsyncPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open store: %w", err)
	}
	// The transaction log lives beside the engine's files, inside the
	// directory the engine just claimed — covered by the same exclusive
	// lock and engine-type marker. Memory backends have nowhere durable to
	// recover from, so they run without one.
	var tl *txlog.Log
	if cfg.StoreBackend != "" && cfg.StoreBackend != backend.Memory && !cfg.DisableTxLog {
		tl, err = txlog.Open(txlog.Options{
			Dir:    filepath.Join(cfg.engineDir(), "txlog"),
			NumDCs: cfg.NumDCs,
			SelfDC: cfg.DC,
			Fsync:  cfg.FsyncPolicy,
		})
		if err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("core: open txlog: %w", err)
		}
	}
	s := &Server{
		cfg:            cfg,
		id:             transport.ServerID(cfg.DC, cfg.Partition),
		clock:          hlc.NewClock(cfg.ClockSource),
		st:             eng,
		tl:             tl,
		vv:             make([]hlc.Timestamp, cfg.NumDCs),
		prepared:       make(map[uint64]*preparedTx),
		recovered:      make(map[uint64]*recoveredPrepare),
		txCtx:          stripemap.New[txContext](0),
		peerLocal:      make([]hlc.Timestamp, cfg.NumPartitions),
		peerRemoteMin:  make([]hlc.Timestamp, cfg.NumPartitions),
		peerOldest:     make([]hlc.Timestamp, cfg.NumPartitions),
		pendingSlice:   stripemap.New[*fanin.TxRead](0),
		pendingPrepare: make(map[uint64]*prepareCall),
		stop:           make(chan struct{}),
	}
	if tl != nil {
		// Recovery order: the engine replayed its own logs in Open above;
		// now the txlog's committed-but-unapplied transactions go into the
		// engine BEFORE the server serves anything, so a kill between the
		// client ack and the apply tick loses nothing.
		s.recoverFromTxLog()
		// Fresh transaction ids must clear every id of the previous
		// lives: the log keeps old ids live across restarts (resync
		// dedupe, re-driven outcomes, remote cohorts' retained prepares),
		// so a colliding new id would match an unrelated old transaction.
		// Seed above the durably reserved watermark and reserve the first
		// block.
		floor := tl.NextSeqFloor()
		s.txSeq.Store(floor)
		tl.ReserveSeqs(floor + seqBlockSize)
		s.seqLimit.Store(floor + seqBlockSize)
		// Snapshot each peer DC's unreplicated tail NOW, before the
		// server serves anything: once live traffic flows, a peer's
		// acknowledgement of a NEW batch could advance its cursor past
		// the old tail before recoveryResend reads it, silently dropping
		// the very transactions the cursor exists to recover. The cursor
		// stays pinned at each tail's high-water mark until the re-sent
		// tail itself is acknowledged.
		s.resendTails = make([][]*txlog.CommittedTx, cfg.NumDCs)
		s.resyncTailSent = make([]atomic.Bool, cfg.NumDCs)
		s.resyncDone = make([]bool, cfg.NumDCs)
		for dc := 0; dc < cfg.NumDCs; dc++ {
			s.resyncDone[dc] = true
			if dc == cfg.DC {
				continue
			}
			if tail := tl.UnreplicatedTail(dc); len(tail) > 0 {
				s.resendTails[dc] = tail
				s.resyncDone[dc] = false
				tl.PinResync(dc, tail[len(tail)-1].CT)
			}
		}
	}
	s.readPool.New = func() any {
		rs := &readScratch{pred: cantorPred{localDC: uint8(cfg.DC)}}
		// Bind the method value once: reusing it is what keeps the
		// predicate allocation off the per-read path.
		rs.visible = rs.pred.visible
		return rs
	}
	s.fanPool.New = func() any { return &fanin.Fanout{} }
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() transport.NodeID { return s.id }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store exposes the underlying storage engine (read-only use in tests).
func (s *Server) Store() store.Engine { return s.st }

// EngineHealthy reports the first write-path failure the storage engine
// has recorded, or nil while it is fully healthy. A durable backend keeps
// acknowledging from memory after a log failure, so this is the signal
// benchmarks and operators poll to catch silently degraded durability.
func (s *Server) EngineHealthy() error { return s.st.Healthy() }

// Healthy reports the first durability failure of the server's write path
// — storage engine or transaction log — or nil while both are intact.
// Unlike the earlier poll-only signal, the server ACTS on this one: a
// degraded server sheds into read-only admission (see ReadOnly).
func (s *Server) Healthy() error {
	if err := s.st.Healthy(); err != nil {
		return err
	}
	if s.tl != nil {
		if err := s.tl.Healthy(); err != nil {
			return err
		}
	}
	return nil
}

// ReadOnly reports whether the server has shed into read-only admission:
// new prepares and commits are refused with a typed error while reads keep
// their nonblocking path. It flips as soon as the engine or the
// transaction log records a write-path failure — an acknowledgement whose
// durability promise cannot be kept must not be issued.
func (s *Server) ReadOnly() bool { return s.Healthy() != nil }

// TxLog exposes the transaction log (nil when disabled); read-only use in
// tests.
func (s *Server) TxLog() *txlog.Log { return s.tl }

// txApplied reports whether the storage engine already holds a version
// written by txID under key — the idempotence check recovery replay and
// resync application run before re-inserting a transaction's writes.
// Transaction ids embed the DC and partition, so a TxID match is exact.
func (s *Server) txApplied(key string, txID uint64) bool {
	return s.st.ReadVisible(key, func(v *store.Version) bool { return v.TxID == txID }) != nil
}

// recoverFromTxLog replays the log's committed transactions into the
// storage engine (skipping the writes the engine already recovered
// itself) and stages outcome-less prepares for the re-driven CommitTx a
// restarted coordinator sends. Runs before the server is registered on
// the network. The idempotence check is per KEY, not per transaction: a
// kill can land mid-PutBatch, leaving some of a transaction's shard logs
// appended and others not, and a whole-transaction skip would lose the
// missing keys.
func (s *Server) recoverFromTxLog() {
	committed := s.tl.Committed()
	applied := make([]uint64, 0, len(committed))
	for _, t := range committed {
		applied = append(applied, t.TxID)
		var puts []store.KV
		for _, kv := range t.Writes {
			if s.txApplied(kv.Key, t.TxID) {
				continue
			}
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.CT, RDT: t.RST, TxID: t.TxID, SrcDC: uint8(s.cfg.DC),
			}})
		}
		s.st.PutBatch(puts)
	}
	// Everything committed in the log is now in the engine.
	s.tl.MarkApplied(applied)
	probe := time.Now().Add(recoveryGrace)
	for _, p := range s.tl.Prepared() {
		s.recovered[p.TxID] = &recoveredPrepare{tx: p, nextProbe: probe}
	}
}

// redriveRecovered is the restart half of the coordinator's lifecycle:
// re-drive the unresolved commit decisions this coordinator acknowledged
// (their cohorts may have crashed between PrepareResp and CommitTx),
// retrying while destinations are still coming up. Anything it cannot
// finish is picked up by the periodic lifecycle loop.
func (s *Server) redriveRecovered() {
	defer s.wg.Done()
	for _, c := range s.tl.CoordPending() {
		for _, p := range c.Cohorts {
			if !s.sendRetry(transport.ServerID(s.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT}) {
				return
			}
		}
	}
}

// resendTailTo re-sends one peer DC the committed tail above its
// replication cursor, snapshotted at construction time, as resync batches
// the receiver deduplicates. Each peer gets its own goroutine — until the
// tail is on the link, applyTick withholds all ordinary replication to
// that DC, and one unreachable peer must not extend that hold to the
// others.
func (s *Server) resendTailTo(dc int, tail []*txlog.CommittedTx) {
	defer s.wg.Done()
	for i := 0; i < len(tail); i += resendBatchSize {
		batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), Resync: true}
		for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
			batch.Txs = append(batch.Txs, wire.ReplTx{TxID: t.TxID, CT: t.CT, RST: t.RST, Writes: t.Writes})
		}
		if !s.sendRetry(transport.ServerID(dc, s.cfg.Partition), batch) {
			return
		}
	}
	s.resyncTailSent[dc].Store(true)
}

// lifecycleLoop runs the periodic transaction-lifecycle maintenance
// (txLifecycleTick) on its own timer, independent of the optional GC loop.
func (s *Server) lifecycleLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(lifecycleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.txLifecycleTick(time.Now())
		case <-s.stop:
			return
		}
	}
}

// sendRetry delivers a recovery message, retrying while the destination is
// unreachable: servers of a restarting deployment come up in arbitrary
// order, and a re-driven outcome or resync batch dropped on the floor
// would silently undo the durability the log just recovered. Gives up only
// when this server stops; reports whether the send succeeded.
func (s *Server) sendRetry(to transport.NodeID, m wire.Message) bool {
	for {
		if err := s.cfg.Network.Send(s.id, to, m); err == nil {
			return true
		}
		select {
		case <-s.stop:
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Start registers the server on the network and launches the apply (ΔR),
// stabilization (ΔG) and garbage-collection loops.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.cfg.Network.Register(s.id, s)
		s.wg.Add(1)
		go s.applyLoop()
		s.wg.Add(1)
		go s.gossipLoop()
		if s.cfg.GCInterval > 0 {
			s.wg.Add(1)
			go s.gcLoop()
		}
		if s.tl != nil {
			// Recovery sends run per destination: a re-drive retrying
			// toward one dead cohort, or one unreachable peer DC, must
			// not block the resync tails — and with them ALL replication
			// — to everyone else.
			s.wg.Add(1)
			go s.redriveRecovered()
			for dc, tail := range s.resendTails {
				if len(tail) > 0 {
					s.wg.Add(1)
					go s.resendTailTo(dc, tail)
				}
			}
			s.wg.Add(1)
			go s.lifecycleLoop()
		}
	})
}

// Stop terminates the background loops, waits for them to exit, flushes
// any transactions still on the commit list into the store, and closes
// the storage engine and the transaction log. With the transaction log
// enabled the flush is an optimization, not the durability mechanism: an
// acknowledged commit whose CommitTx was in flight when draining began is
// already logged and is recovered on the next start — the commit-time
// durability gap the pre-txlog shutdown special-cases existed for is
// closed by the log itself.
func (s *Server) Stop() { s.shutdown(false) }

// Kill stops the server WITHOUT the final apply/flush, simulating a hard
// kill for recovery tests: acknowledged-but-unapplied transactions stay
// out of the engine and must come back through transaction-log recovery.
// (In-process, file writes already handed to the OS survive regardless —
// what Kill withholds is every shutdown courtesy the process performs.)
func (s *Server) Kill() { s.shutdown(true) }

func (s *Server) shutdown(kill bool) {
	var flush bool
	s.stopOnce.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()
		close(s.stop)
		flush = true
	})
	s.wg.Wait()
	s.reqWG.Wait()
	if !flush {
		return
	}
	if !kill {
		// Prepared-but-uncommitted transactions can never commit now, but
		// their proposed timestamps would hold the apply upper bound below
		// later acknowledged commits; drop them so the final apply flushes
		// every transaction on the commit list. (With the txlog their
		// prepares stay logged, so a commit decision that surfaces after a
		// restart can still be honored.)
		s.mu.Lock()
		s.prepared = make(map[uint64]*preparedTx)
		s.mu.Unlock()
		s.applyTick()
		s.flushCommitted()
	}
	if err := s.st.Close(); err != nil {
		// The engine surfaces its first append/sync failure here; it
		// must not vanish silently — acknowledged commits may not have
		// reached disk.
		fmt.Fprintf(os.Stderr, "core: dc%d/p%d store close: %v\n", s.cfg.DC, s.cfg.Partition, err)
	}
	if s.tl != nil {
		if err := s.tl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "core: dc%d/p%d txlog close: %v\n", s.cfg.DC, s.cfg.Partition, err)
		}
	}
}

// flushCommitted force-applies every transaction still on the commit list
// to the storage engine, ignoring the apply upper bound. Only used during
// Stop: the server serves no more reads, and a durable engine must not
// close with acknowledged commits unapplied. The regular final applyTick
// usually drains the list already; this catches commit timestamps the
// local clock has not caught up to.
//
// Replication is NOT retried here: a transaction flushed this way (or
// whose Replicate message was dropped by draining peers) persists locally
// but never reaches remote DCs — there is no replication cursor yet, so a
// restart can leave DCs durably diverged on the final pre-shutdown
// transactions (tracked in ROADMAP.md alongside commit-time durability).
func (s *Server) flushCommitted() {
	s.mu.Lock()
	apply := s.committed
	s.committed = nil
	s.mu.Unlock()
	if len(apply) == 0 {
		return
	}
	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var puts []store.KV
	for _, t := range apply {
		for _, kv := range t.writes {
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.ct, RDT: t.rst, TxID: t.txID, SrcDC: uint8(s.cfg.DC),
			}})
		}
	}
	s.st.PutBatch(puts)
	if s.tl != nil {
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.txID
		}
		s.tl.MarkApplied(ids)
	}
}

// goAsync runs fn on a tracked goroutine unless the server is draining.
// The commit path uses it for the 2PC response collection, which must not
// block a delivery link. (Reads no longer need it: their fan-in is a
// completion counter, not a parked goroutine.)
func (s *Server) goAsync(fn func()) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return
	}
	s.reqWG.Add(1)
	s.drainMu.Unlock()
	go func() {
		defer s.reqWG.Done()
		fn()
	}()
}

// StableTimes returns the server's current view of (LST, RST). The two
// scalars are loaded independently; each is monotone, and no protocol rule
// requires them to be read as a pair (StartTx re-establishes rt < lt
// itself).
func (s *Server) StableTimes() (lst, rst hlc.Timestamp) {
	return s.lst.Load(), s.rst.Load()
}

// VersionVector returns a copy of the server's version vector.
func (s *Server) VersionVector() []hlc.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]hlc.Timestamp, len(s.vv))
	copy(out, s.vv)
	return out
}

// LocalVersionClock returns vv[m], the local snapshot installed by this
// partition.
func (s *Server) LocalVersionClock() hlc.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vv[s.cfg.DC]
}

// newTxID generates a globally unique transaction id: DC in the top byte,
// partition in the next two, then a local sequence number. With a
// transaction log, sequence numbers are drawn from durably reserved
// blocks so ids stay unique across restarts too (an id can outlive this
// process in a cohort's log the moment it is handed out).
func (s *Server) newTxID() uint64 {
	seq := s.txSeq.Add(1)
	if s.tl != nil && seq > s.seqLimit.Load() {
		s.seqMu.Lock()
		if seq > s.seqLimit.Load() {
			s.tl.ReserveSeqs(seq + seqBlockSize)
			s.seqLimit.Store(seq + seqBlockSize)
		}
		s.seqMu.Unlock()
	}
	return uint64(s.cfg.DC)<<56 | uint64(s.cfg.Partition)<<40 | seq
}

// visibleFunc builds the CANToR snapshot visibility predicate
// (Algorithm 3 lines 7–8): a local item is visible when ut ≤ lt ∧ rdt ≤ rt;
// a remote item when ut ≤ rt ∧ rdt ≤ lt.
func visibleFunc(localDC uint8, lt, rt hlc.Timestamp) store.VisibleFunc {
	return func(v *store.Version) bool {
		if v.SrcDC == localDC {
			return v.UT <= lt && v.RDT <= rt
		}
		return v.UT <= rt && v.RDT <= lt
	}
}

// HandleMessage implements transport.Handler. It dispatches on message
// type; handlers never block (Wren's defining property), so the per-link
// FIFO delivery goroutines are never stalled.
func (s *Server) HandleMessage(from transport.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.StartTxReq:
		s.handleStartTx(from, msg)
	case *wire.TxReadReq:
		s.handleTxRead(from, msg)
	case *wire.CommitReq:
		s.handleCommitReq(from, msg)
	case *wire.SliceReq:
		s.handleSliceReq(from, msg)
	case *wire.SliceResp:
		s.handleSliceResp(msg)
	case *wire.PrepareReq:
		s.handlePrepareReq(from, msg)
	case *wire.PrepareResp:
		s.handlePrepareResp(msg)
	case *wire.CommitTx:
		s.handleCommitTx(from, msg)
	case *wire.CommitAck:
		s.handleCommitAck(msg)
	case *wire.Replicate:
		s.handleReplicate(msg)
	case *wire.ReplicateAck:
		s.handleReplicateAck(msg)
	case *wire.Heartbeat:
		s.handleHeartbeat(msg)
	case *wire.StableBroadcast:
		s.handleStableBroadcast(msg)
	case *wire.GCBroadcast:
		s.handleGCBroadcast(msg)
	case *wire.HealthReq:
		s.handleHealthReq(from, msg)
	case *wire.TxStatusReq:
		s.handleTxStatusReq(from, msg)
	case *wire.TxStatusResp:
		s.handleTxStatusResp(from, msg)
	}
}

// handleStartTx implements Algorithm 2 lines 1–6: refresh the server's
// stable times with the client's, then assign the transaction snapshot
// (lst, min(rst, lst−1)).
func (s *Server) handleStartTx(from transport.NodeID, m *wire.StartTxReq) {
	s.lst.Advance(m.LST)
	s.rst.Advance(m.RST)
	id := s.newTxID()
	s.snapMu.RLock()
	lt := s.lst.Load()
	rt := hlc.Min(s.rst.Load(), lt.Prev())
	s.txCtx.Store(id, txContext{lt: lt, rt: rt, created: time.Now()})
	s.snapMu.RUnlock()

	s.metrics.TxStarted.Inc()
	s.send(from, &wire.StartTxResp{ReqID: m.ReqID, TxID: id, LST: lt, RST: rt})
}

// handleTxRead implements Algorithm 2 lines 7–16: fan the key set out to
// the responsible partitions and merge the slices via a completion-counter
// fan-in — the last arriving SliceResp assembles and sends the TxReadResp,
// so no goroutine parks per in-flight read and no server-wide lock is
// taken.
func (s *Server) handleTxRead(from transport.NodeID, m *wire.TxReadReq) {
	ctx, ok := s.txCtx.Load(m.TxID)
	if !ok {
		// Unknown (expired) transaction: reply empty so the client can fail fast.
		s.send(from, &wire.TxReadResp{ReqID: m.ReqID})
		return
	}
	lt, rt := ctx.lt, ctx.rt

	fo := s.fanPool.Get().(*fanin.Fanout)
	fo.Reset(s.cfg.NumPartitions)
	for _, k := range m.Keys {
		fo.Add(sharding.PartitionOf(k, s.cfg.NumPartitions), k)
	}
	remote := len(fo.Touched)
	if len(fo.Groups[s.cfg.Partition]) > 0 {
		remote--
	}

	fi := fanin.Start(from, m.ReqID, remote)

	// Keys this partition owns are served locally with one batched store
	// read instead of a self-addressed SliceReq round trip, appending
	// straight into the response buffer: this runs before any remote
	// registration, so nothing can race the append and no staging copy
	// is paid.
	if localKeys := fo.Groups[s.cfg.Partition]; len(localKeys) > 0 {
		fi.SetItems(s.readSlice(localKeys, lt, rt, fi.Items()))
		s.metrics.SlicesServed.Inc()
	}

	for _, p := range fo.Touched {
		if p == s.cfg.Partition {
			continue
		}
		reqID := s.reqSeq.Add(1)
		req := wire.GetSliceReq()
		req.ReqID, req.LT, req.RT = reqID, lt, rt
		req.Keys = append(req.Keys[:0], fo.Groups[p]...)
		s.pendingSlice.Store(reqID, fi)
		s.send(transport.ServerID(s.cfg.DC, p), req)
	}
	s.fanPool.Put(fo)

	// Release the coordinator's own contribution; when every remote slice
	// already answered (or none was needed), this assembles the response.
	if resp, to, last := fi.Finish(); last {
		s.send(to, resp)
	}
}

// handleSliceReq implements Algorithm 3 lines 1–12: refresh stable times
// and return the freshest visible version of each key — without blocking
// and without acquiring any server-wide mutex. The response message and
// its item buffer come from pools; the receiver releases them.
func (s *Server) handleSliceReq(from transport.NodeID, m *wire.SliceReq) {
	s.lst.Advance(m.LT)
	s.rst.Advance(m.RT)

	resp := wire.GetSliceResp()
	resp.ReqID = m.ReqID
	resp.Items = s.readSlice(m.Keys, m.LT, m.RT, resp.Items[:0])
	s.metrics.SlicesServed.Inc()
	s.send(from, resp)
	wire.PutSliceReq(m)
}

// readSlice resolves keys under the CANToR snapshot (lt, rt) with one
// batched store pass — one read-lock acquisition per touched shard — and
// appends the visible items to dst, which it returns. In steady state it
// allocates nothing: the bound predicate and the version buffer come from
// the server's read pool. A visible tombstone means the key is deleted in
// this snapshot — it hides older versions and is reported as absence (no
// item), like a key never written.
func (s *Server) readSlice(keys []string, lt, rt hlc.Timestamp, dst []wire.Item) []wire.Item {
	rs := s.readPool.Get().(*readScratch)
	rs.pred.lt, rs.pred.rt = lt, rt
	rs.vers = s.st.ReadVisibleBatchInto(keys, rs.visible, rs.vers)
	for i, v := range rs.vers {
		if v != nil && v.Value != nil {
			dst = append(dst, wire.Item{
				Key: keys[i], Value: v.Value, UT: v.UT, RDT: v.RDT, TxID: v.TxID, SrcDC: v.SrcDC,
			})
		}
	}
	clear(rs.vers) // don't pin GC-able version chains while idle in the pool
	s.readPool.Put(rs)
	return dst
}

func (s *Server) handleSliceResp(m *wire.SliceResp) {
	if fi, ok := s.pendingSlice.LoadAndDelete(m.ReqID); ok {
		fi.Fold(m.Items, m.BlockedMicros)
		if resp, to, last := fi.Finish(); last {
			s.send(to, resp)
		}
	}
	wire.PutSliceResp(m)
}

// handleCommitReq implements Algorithm 2 lines 17–28: run the two-phase
// commit across the cohort partitions.
func (s *Server) handleCommitReq(from transport.NodeID, m *wire.CommitReq) {
	ctx, ok := s.txCtx.LoadAndDelete(m.TxID)
	var lt, rt hlc.Timestamp
	if ok {
		lt, rt = ctx.lt, ctx.rt
	} else {
		// Context expired (or read-only cleanup racing): fall back to the
		// server's current stable times; commit timestamps proposed below
		// still exceed every snapshot the client has seen via hwt.
		lt, rt = s.lst.Load(), s.rst.Load()
	}

	if len(m.Writes) == 0 {
		// Read-only transactions just release their context (the paper's
		// COMMIT is only invoked when WS ≠ ∅). They are admitted even in
		// read-only degraded mode — nothing about them needs durability.
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: 0})
		return
	}
	if err := s.Healthy(); err != nil {
		// Read-only admission: the durability this acknowledgement would
		// promise cannot be delivered, so the write is refused with a
		// typed error instead of being accepted into a degraded log.
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: err.Error()})
		return
	}

	ht := hlc.Max(lt, rt, m.HWT) // Algorithm 2 line 19

	type cohortWrites struct {
		partition int
		writes    []wire.KV
	}
	byPartition := make(map[int][]wire.KV)
	for _, kv := range m.Writes {
		p := sharding.PartitionOf(kv.Key, s.cfg.NumPartitions)
		byPartition[p] = append(byPartition[p], kv)
	}
	cohorts := make([]cohortWrites, 0, len(byPartition))
	for p, ws := range byPartition {
		cohorts = append(cohorts, cohortWrites{partition: p, writes: ws})
	}

	call := &prepareCall{ch: make(chan prepareVote, len(cohorts))}
	s.mu.Lock()
	s.pendingPrepare[m.TxID] = call
	s.mu.Unlock()

	for _, c := range cohorts {
		s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.PrepareReq{
			ReqID: s.reqSeq.Add(1), TxID: m.TxID,
			LT: lt, RT: rt, HT: ht, Writes: c.writes,
		})
	}

	s.goAsync(func() {
		var ct hlc.Timestamp
		var refusal string
		for range cohorts {
			select {
			case v := <-call.ch:
				if v.err != "" && refusal == "" {
					refusal = v.err
				}
				if v.pt > ct {
					ct = v.pt
				}
			case <-s.stop:
				return
			}
		}
		// The pendingPrepare entry stays registered until the outcome is
		// decided (logged or aborted): TxStatusReq answers "not committed"
		// only when a transaction is in NEITHER pendingPrepare nor the
		// decision log, so the in-flight window must never show a gap — a
		// cohort that restarted mid-2PC probes for exactly this state, and
		// a false final verdict would abort a prepare this decision is
		// about to commit.
		finish := func() {
			s.mu.Lock()
			delete(s.pendingPrepare, m.TxID)
			s.mu.Unlock()
		}
		if refusal != "" {
			// A degraded cohort refused its prepare: abort the 2PC (zero
			// CT releases the healthy cohorts' prepares) and surface the
			// typed refusal to the client.
			finish()
			for _, c := range cohorts {
				s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: 0})
			}
			s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: refusal})
			return
		}
		if s.tl != nil {
			// The commit decision is logged and made stable BEFORE
			// CommitTx leaves and BEFORE the client ack: the ack's
			// durability promise is this record, and holding CommitTx
			// back until it holds means a failed append/fsync can still
			// abort the whole 2PC cleanly — no cohort has committed yet.
			parts := make([]uint16, 0, len(cohorts))
			for _, c := range cohorts {
				parts = append(parts, uint16(c.partition))
			}
			s.tl.LogCoordCommit(m.TxID, ct, parts)
			if s.tl.SyncOnAppend() {
				s.tl.Sync()
			}
			if err := s.tl.Healthy(); err != nil {
				// The decision never became durable: withdraw it (so a
				// recovery cannot re-drive a commit the client was told
				// failed), abort the cohorts, refuse the client.
				s.tl.CoordAbort(m.TxID)
				finish()
				for _, c := range cohorts {
					s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: 0})
				}
				s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: err.Error()})
				return
			}
		}
		finish()
		for _, c := range cohorts {
			s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: ct})
		}
		if s.cfg.BlockingCommit {
			// Ablation: hold the reply until the write is stable everywhere
			// in the DC, making the client cache unnecessary — and commits
			// slow (paper §III-B).
			ticker := time.NewTicker(time.Millisecond)
			defer ticker.Stop()
			for s.lst.Load() < ct {
				select {
				case <-ticker.C:
				case <-s.stop:
					return
				}
			}
		}
		s.metrics.TxCommitted.Inc()
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: ct})
	})
}

// handlePrepareReq implements Algorithm 3 lines 13–19: advance the HLC past
// everything the client has seen and propose it as the commit timestamp.
//
// The proposal and its registration in the pending list happen atomically
// under s.mu, the same mutex applyTick holds while computing its apply
// upper bound. Without that, applyTick could interleave between TickPast
// and the registration, compute an upper bound at or above the proposal
// (TickPast has already advanced the clock), publish it as stable — and
// the transaction would later commit INSIDE the stable region, applied
// after readers were already served without it: the causal/atomic
// violations TestTCCConformance* exhibited under CPU starvation, where the
// preemption window between the two statements stretched to milliseconds.
func (s *Server) handlePrepareReq(from transport.NodeID, m *wire.PrepareReq) {
	s.lst.Advance(m.LT)
	s.rst.Advance(m.RT)
	if err := s.Healthy(); err != nil {
		// Degraded durability: refuse, so the coordinator aborts instead
		// of committing a write set this cohort cannot log.
		s.send(from, &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, Err: err.Error()})
		return
	}
	s.mu.Lock()
	pt := s.clock.TickPast(hlc.Max(m.HT, m.LT, m.RT))
	s.prepared[m.TxID] = &preparedTx{pt: pt, rst: m.RT, writes: m.Writes}
	s.mu.Unlock()
	resp := &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, PT: pt}
	if s.tl != nil {
		s.tl.LogPrepare(&txlog.PreparedTx{TxID: m.TxID, PT: pt, RST: m.RT, Writes: m.Writes})
		if s.tl.SyncOnAppend() {
			// The fsync must not stall the delivery link (reads share it):
			// the proposal leaves on a tracked goroutine once the prepare
			// record is stable.
			s.goAsync(func() {
				s.tl.Sync()
				s.send(from, s.checkedPrepareResp(resp))
			})
			return
		}
		resp = s.checkedPrepareResp(resp)
	}
	s.send(from, resp)
}

// checkedPrepareResp downgrades a prepare proposal to a refusal when the
// append (or fsync) backing it failed: the proposal claims the write set
// is recoverable here, and a vote whose own record never became durable
// must not be cast — only LATER requests being refused would let this one
// transaction commit on a broken promise.
func (s *Server) checkedPrepareResp(resp *wire.PrepareResp) *wire.PrepareResp {
	if err := s.tl.Healthy(); err != nil {
		return &wire.PrepareResp{ReqID: resp.ReqID, TxID: resp.TxID, Err: err.Error()}
	}
	return resp
}

func (s *Server) handlePrepareResp(m *wire.PrepareResp) {
	s.mu.Lock()
	call := s.pendingPrepare[m.TxID]
	s.mu.Unlock()
	if call != nil {
		call.ch <- prepareVote{pt: m.PT, err: m.Err}
	}
}

// handleCommitTx implements Algorithm 3 lines 20–24: move the transaction
// from the pending list to the commit list under its final timestamp. A
// zero CT aborts instead (degraded-cohort refusal). With the transaction
// log enabled the outcome is logged and acknowledged back to the
// coordinator, which releases the coordinator's logged decision once every
// cohort holds the outcome durably; re-driven outcomes after a restart
// resolve recovered prepares, and outcomes already known deduplicate to
// just the acknowledgement.
func (s *Server) handleCommitTx(from transport.NodeID, m *wire.CommitTx) {
	if m.CT == 0 {
		s.mu.Lock()
		delete(s.prepared, m.TxID)
		delete(s.recovered, m.TxID)
		s.mu.Unlock()
		if s.tl != nil {
			s.tl.LogAbort(m.TxID)
		}
		return
	}
	s.clock.Update(m.CT)
	s.mu.Lock()
	committed := false
	if p, ok := s.prepared[m.TxID]; ok {
		delete(s.prepared, m.TxID)
		s.committed = append(s.committed, &committedTx{
			txID: m.TxID, ct: m.CT, rst: p.rst, writes: p.writes,
		})
		committed = true
	} else if rp, ok := s.recovered[m.TxID]; ok {
		// A re-driven outcome for a prepare recovered from the txlog: the
		// client was acknowledged in a previous life; commit it now.
		delete(s.recovered, m.TxID)
		s.committed = append(s.committed, &committedTx{
			txID: m.TxID, ct: m.CT, rst: rp.tx.RST, writes: rp.tx.Writes,
		})
		committed = true
	}
	s.mu.Unlock()
	if s.tl == nil {
		return
	}
	if committed {
		s.tl.LogCommit(m.TxID, m.CT)
	}
	// The ack states "outcome durable here"; it may only leave after the
	// commit record is stable (and not on the delivery goroutine), and
	// never when the append or fsync backing it failed — withholding it
	// keeps the coordinator's decision pending, to be re-driven rather
	// than resolved on a broken promise. DUPLICATE outcomes take the same
	// sync barrier: a re-driven CommitTx can arrive while the first
	// copy's fsync is still in flight, and acknowledging it early would
	// resolve the decision against an unsynced record (the group-commit
	// sync is free once the record is already stable).
	ack := &wire.CommitAck{TxID: m.TxID, Partition: uint16(s.cfg.Partition)}
	if s.tl.SyncOnAppend() {
		s.goAsync(func() {
			s.tl.Sync()
			if s.tl.Healthy() == nil {
				s.send(from, ack)
			}
		})
		return
	}
	if s.tl.Healthy() == nil {
		s.send(from, ack)
	}
}

// handleCommitAck releases the coordinator's logged commit decision once
// the acknowledging cohort — and eventually all of them — holds the
// outcome durably.
func (s *Server) handleCommitAck(m *wire.CommitAck) {
	if s.tl != nil {
		s.tl.CoordAck(m.TxID, m.Partition)
	}
}

// handleReplicateAck advances the persisted replication cursor for the
// acknowledging DC: everything up to UpTo is confirmed applied there, so a
// restart re-sends only what lies above. While a post-restart resync is
// outstanding the cursor is pinned below the re-sent tail (only the
// tail's own acknowledgement lifts it) — the txlog clamps the advance.
func (s *Server) handleReplicateAck(m *wire.ReplicateAck) {
	if s.tl == nil {
		return
	}
	s.tl.AdvanceCursor(int(m.DC), m.UpTo)
	if m.Resync {
		s.tl.UnpinResync(int(m.DC), m.UpTo)
	}
}

// handleHealthReq answers the operator-facing health probe (wren-cli
// health): whether this server is in read-only admission and why.
func (s *Server) handleHealthReq(from transport.NodeID, m *wire.HealthReq) {
	resp := &wire.HealthResp{ReqID: m.ReqID}
	if err := s.Healthy(); err != nil {
		resp.ReadOnly = true
		resp.Err = err.Error()
	}
	s.send(from, resp)
}

// handleReplicate applies remotely committed transactions (Algorithm 4
// lines 22–26). FIFO links guarantee commit-timestamp order per sender.
// Resync batches — a restarted sender replaying its unconfirmed tail — are
// deduplicated per transaction against the engine; ordinary batches skip
// that check. When the transaction log is enabled the batch is
// acknowledged so the sender's replication cursor can advance.
func (s *Server) handleReplicate(m *wire.Replicate) {
	var puts []store.KV
	for i := range m.Txs {
		t := &m.Txs[i]
		for _, kv := range t.Writes {
			if m.Resync && s.txApplied(kv.Key, t.TxID) {
				continue // already applied in a previous life (per key: an
				// earlier kill may have split the transaction's batch)
			}
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.CT, RDT: t.RST, TxID: t.TxID, SrcDC: m.SrcDC,
			}})
		}
	}
	s.st.PutBatch(puts)
	s.metrics.ReplTxApplied.Add(uint64(len(puts)))
	if len(m.Txs) == 0 {
		return
	}
	last := m.Txs[len(m.Txs)-1].CT
	s.mu.Lock()
	if last > s.vv[m.SrcDC] {
		s.vv[m.SrcDC] = last
	}
	s.mu.Unlock()
	if s.tl != nil && s.Healthy() == nil {
		// The engine write above honored the fsync policy, so the ack's
		// durability statement is exactly as strong as every other one —
		// unless this replica's write path is degraded and the batch only
		// reached memory: then the ack is withheld, the sender's cursor
		// stays put, and its retained tail can still resync us after a
		// restart instead of leaving the DCs durably diverged. The Resync
		// echo lets the sender's cursor pin distinguish tail confirmation
		// from ordinary traffic.
		s.send(transport.ServerID(int(m.SrcDC), int(m.Partition)),
			&wire.ReplicateAck{DC: uint8(s.cfg.DC), Partition: m.Partition, UpTo: last, Resync: m.Resync})
	}
}

// handleHeartbeat advances the version-vector entry of an idle remote
// replica (Algorithm 4 lines 27–28).
func (s *Server) handleHeartbeat(m *wire.Heartbeat) {
	s.mu.Lock()
	if m.TS > s.vv[m.SrcDC] {
		s.vv[m.SrcDC] = m.TS
	}
	s.mu.Unlock()
}

// handleStableBroadcast ingests a peer partition's BiST contribution and
// recomputes the DC-stable times (Algorithm 4 lines 29–31). Aggregated
// messages (tree topology) carry the final LST/RST directly.
func (s *Server) handleStableBroadcast(m *wire.StableBroadcast) {
	if m.Aggregate {
		s.lst.Advance(m.Local)
		s.rst.Advance(m.RemoteMin)
		return
	}
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions {
		return
	}
	s.mu.Lock()
	if m.Local > s.peerLocal[p] {
		s.peerLocal[p] = m.Local
	}
	if m.RemoteMin > s.peerRemoteMin[p] {
		s.peerRemoteMin[p] = m.RemoteMin
	}
	s.recomputeStableLocked()
	s.mu.Unlock()
}

// recomputeStableLocked folds the gossiped per-partition contributions into
// the published LST and RST. Both are monotone because each peer's
// contributions are; publication is an atomic max-merge, so readers load
// them without touching s.mu.
func (s *Server) recomputeStableLocked() {
	lst := s.peerLocal[0]
	rst := s.peerRemoteMin[0]
	for i := 1; i < s.cfg.NumPartitions; i++ {
		if s.peerLocal[i] < lst {
			lst = s.peerLocal[i]
		}
		if s.peerRemoteMin[i] < rst {
			rst = s.peerRemoteMin[i]
		}
	}
	s.lst.Advance(lst)
	s.rst.Advance(rst)
}

// localContribution returns this server's own BiST scalars: its local
// version clock and the minimum over its remote version-vector entries.
func (s *Server) localContributionLocked() (local, remoteMin hlc.Timestamp) {
	local = s.vv[s.cfg.DC]
	if s.cfg.NumDCs == 1 {
		// With a single site there are no remote dependencies; the remote
		// stable time tracks the local one.
		return local, local
	}
	first := true
	for i, t := range s.vv {
		if i == s.cfg.DC {
			continue
		}
		if first || t < remoteMin {
			remoteMin = t
			first = false
		}
	}
	return local, remoteMin
}

// applyLoop runs Algorithm 4 lines 5–21 every ΔR.
func (s *Server) applyLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ApplyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.applyTick()
		case <-s.stop:
			return
		}
	}
}

// applyTick applies committed transactions up to the safe upper bound and
// replicates them; when idle it heartbeats instead.
func (s *Server) applyTick() {
	s.mu.Lock()
	var ub hlc.Timestamp
	if len(s.prepared) > 0 {
		first := true
		for _, p := range s.prepared {
			if first || p.pt < ub {
				ub = p.pt
				first = false
			}
		}
		ub = ub.Prev()
	} else {
		ub = s.clock.Now()
		// Pin the HLC so any later prepare proposes strictly above ub;
		// otherwise a commit could land at a timestamp we already declared
		// stable.
		s.clock.Update(ub)
	}
	if ub < s.vv[s.cfg.DC] {
		ub = s.vv[s.cfg.DC]
	}

	hadCommitted := len(s.committed) > 0
	var apply []*committedTx
	if hadCommitted {
		rest := s.committed[:0]
		for _, c := range s.committed {
			if c.ct <= ub {
				apply = append(apply, c)
			} else {
				rest = append(rest, c)
			}
		}
		s.committed = rest
	}
	s.mu.Unlock()

	// Apply in commit-timestamp order, grouping equal timestamps into one
	// replication message (Algorithm 4 lines 8–16). Each group's writes go
	// through one shard-grouped PutBatch, and all writes happen before
	// vv[m] is published so no reader can observe a stable time whose
	// versions are missing.
	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var batches []*wire.Replicate
	for i := 0; i < len(apply); {
		j := i
		batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition)}
		var puts []store.KV
		for ; j < len(apply) && apply[j].ct == apply[i].ct; j++ {
			t := apply[j]
			for _, kv := range t.writes {
				puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
					Value: kv.VersionValue(), UT: t.ct, RDT: t.rst, TxID: t.txID, SrcDC: uint8(s.cfg.DC),
				}})
			}
			batch.Txs = append(batch.Txs, wire.ReplTx{
				TxID: t.txID, CT: t.ct, RST: t.rst, Writes: t.writes,
			})
		}
		s.st.PutBatch(puts)
		batches = append(batches, batch)
		i = j
	}

	s.mu.Lock()
	if ub > s.vv[s.cfg.DC] {
		s.vv[s.cfg.DC] = ub
	}
	s.mu.Unlock()
	if s.tl != nil && len(apply) > 0 {
		// Exactly these transactions are now in the engine; the log may
		// release their records once replication confirms them. Marked by
		// id, not by ub: a re-driven recovered commit logged concurrently
		// can carry an old ct ≤ ub without being in this batch.
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.txID
		}
		s.tl.MarkApplied(ids)
	}

	hb := &wire.Heartbeat{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), TS: ub}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		if s.tl != nil && !s.resyncDone[dc] {
			// Replication to this DC is held until the restart resync
			// tail is on its link: a batch or heartbeat overtaking the
			// tail would advance the peer's version vector past
			// transactions still in flight behind it. Once the tail is
			// enqueued, this (single-goroutine) tick ships one dedupe-safe
			// catch-up of everything still unconfirmed — including this
			// tick's transactions — and normal replication resumes next
			// tick.
			if !s.resyncTailSent[dc].Load() {
				continue
			}
			for i, tail := 0, s.tl.UnreplicatedTail(dc); i < len(tail); i += resendBatchSize {
				batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), Resync: true}
				for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
					batch.Txs = append(batch.Txs, wire.ReplTx{TxID: t.TxID, CT: t.CT, RST: t.RST, Writes: t.Writes})
				}
				s.send(transport.ServerID(dc, s.cfg.Partition), batch)
			}
			s.resyncDone[dc] = true
			continue
		}
		for _, b := range batches {
			s.send(transport.ServerID(dc, s.cfg.Partition), b)
		}
		if !hadCommitted {
			s.send(transport.ServerID(dc, s.cfg.Partition), hb)
		}
	}
}

// gossipLoop runs the BiST exchange every ΔG.
func (s *Server) gossipLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gossipTick()
		case <-s.stop:
			return
		}
	}
}

func (s *Server) gossipTick() {
	s.mu.Lock()
	local, remoteMin := s.localContributionLocked()
	if local > s.peerLocal[s.cfg.Partition] {
		s.peerLocal[s.cfg.Partition] = local
	}
	if remoteMin > s.peerRemoteMin[s.cfg.Partition] {
		s.peerRemoteMin[s.cfg.Partition] = remoteMin
	}
	s.recomputeStableLocked()
	s.mu.Unlock()
	lst, rst := s.lst.Load(), s.rst.Load()

	if s.cfg.GossipTree {
		if s.cfg.Partition == 0 {
			// Root: push the aggregated stable times down the tree.
			agg := &wire.StableBroadcast{
				Partition: 0, Aggregate: true, Local: lst, RemoteMin: rst,
			}
			for p := 1; p < s.cfg.NumPartitions; p++ {
				s.send(transport.ServerID(s.cfg.DC, p), agg)
			}
			return
		}
		// Leaf: report the local contribution to the root only.
		s.send(transport.ServerID(s.cfg.DC, 0), &wire.StableBroadcast{
			Partition: uint16(s.cfg.Partition), Local: local, RemoteMin: remoteMin,
		})
		return
	}

	msg := &wire.StableBroadcast{
		Partition: uint16(s.cfg.Partition), Local: local, RemoteMin: remoteMin,
	}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}
}

// gcLoop exchanges oldest-active snapshots and prunes version chains.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gcTick()
		case <-s.stop:
			return
		}
	}
}

func (s *Server) gcTick() {
	now := time.Now()
	// Expire abandoned transaction contexts so they cannot hold back GC,
	// and compute the oldest snapshot of a surviving transaction — or the
	// current visible snapshot when idle (paper §IV-B). The GC floor is
	// the stable time loaded under the snapMu barrier: every in-flight
	// snapshot assignment drains first, so any context the Range below
	// cannot see yet was assigned lt ≥ this floor and needs no
	// protection from it.
	s.snapMu.Lock()
	oldest := s.lst.Load()
	s.snapMu.Unlock()
	var expired []uint64
	s.txCtx.Range(func(id uint64, ctx txContext) bool {
		if now.Sub(ctx.created) > s.cfg.TxContextTTL {
			expired = append(expired, id)
			return true
		}
		if ctx.lt < oldest {
			oldest = ctx.lt
		}
		return true
	})
	for _, id := range expired {
		if _, ok := s.txCtx.LoadAndDelete(id); ok {
			s.metrics.CtxExpired.Inc()
		}
	}
	// Sweep in-flight read fan-ins whose slice responses will never come
	// (a peer died mid-read): the client has long timed out; dropping the
	// entry lets the fan-in state be reclaimed.
	var staleReads []uint64
	s.pendingSlice.Range(func(reqID uint64, fi *fanin.TxRead) bool {
		if now.Sub(fi.Created()) > s.cfg.TxContextTTL {
			staleReads = append(staleReads, reqID)
		}
		return true
	})
	for _, reqID := range staleReads {
		s.pendingSlice.Delete(reqID)
	}
	s.mu.Lock()
	if oldest > s.peerOldest[s.cfg.Partition] {
		s.peerOldest[s.cfg.Partition] = oldest
	}
	threshold := s.peerOldest[0]
	for _, t := range s.peerOldest[1:] {
		if t < threshold {
			threshold = t
		}
	}
	s.mu.Unlock()

	msg := &wire.GCBroadcast{Partition: uint16(s.cfg.Partition), Oldest: oldest}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}

	if threshold > 0 {
		res := s.st.GCStats(threshold)
		if res.Removed > 0 {
			s.metrics.GCRemoved.Add(uint64(res.Removed))
		}
		if res.DroppedKeys > 0 {
			s.metrics.GCKeysDropped.Add(uint64(res.DroppedKeys))
		}
	}
}

// txLifecycleTick is the periodic maintenance of the durable transaction
// lifecycle, run from lifecycleLoop: probe the coordinators of recovered
// prepares whose outcome has not arrived (cooperative 2PC termination —
// only an explicit "not committed" answer may abort them), and re-drive
// the CommitTx of unresolved commit decisions whose cohorts have not all
// confirmed a durable outcome (a cohort crash can swallow the original
// CommitTx or its ack without this coordinator ever restarting).
func (s *Server) txLifecycleTick(now time.Time) {
	if s.tl == nil {
		return
	}
	var probes []uint64
	s.mu.Lock()
	for id, rp := range s.recovered {
		if now.After(rp.nextProbe) {
			probes = append(probes, id)
			rp.nextProbe = now.Add(recoveryGrace)
		}
	}
	s.mu.Unlock()
	for _, id := range probes {
		dc, p := coordinatorOf(id)
		if dc < s.cfg.NumDCs && p < s.cfg.NumPartitions {
			s.send(transport.ServerID(dc, p), &wire.TxStatusReq{TxID: id})
		}
	}
	for _, c := range s.tl.RedrivePending(redriveAfter) {
		for _, p := range c.Cohorts {
			s.send(transport.ServerID(s.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT})
		}
	}
}

// coordinatorOf decodes the coordinator server embedded in a transaction
// id (see newTxID: DC in the top byte, partition in the next two).
func coordinatorOf(txID uint64) (dc, partition int) {
	return int(txID >> 56), int(uint16(txID >> 40))
}

// handleTxStatusReq answers a cohort's 2PC-termination probe from the
// coordinator's logged decisions. "No decision retained" is a final abort
// verdict for a cohort still holding the prepare — either the client was
// never acknowledged, or the decision was resolved, which requires that
// very cohort's durable-commit ack, contradicting a still-dangling
// prepare — UNLESS the 2PC is still collecting votes: then the outcome is
// genuinely undecided (a slow sibling cohort can stall it past the probe
// grace) and the coordinator stays silent, leaving the cohort to re-probe.
func (s *Server) handleTxStatusReq(from transport.NodeID, m *wire.TxStatusReq) {
	ct, ok := s.coordDecision(m.TxID)
	if !ok {
		s.mu.Lock()
		_, inFlight := s.pendingPrepare[m.TxID]
		s.mu.Unlock()
		if inFlight {
			return
		}
	}
	s.send(from, &wire.TxStatusResp{TxID: m.TxID, CT: ct, Committed: ok})
}

// coordDecision is a nil-safe lookup of the coordinator decision.
func (s *Server) coordDecision(txID uint64) (hlc.Timestamp, bool) {
	if s.tl == nil {
		return 0, false
	}
	return s.tl.CoordDecision(txID)
}

// handleTxStatusResp settles a recovered prepare: a committed verdict
// flows through the normal commit path (including the durable-commit ack
// back to the coordinator); a not-committed verdict finally aborts it.
func (s *Server) handleTxStatusResp(from transport.NodeID, m *wire.TxStatusResp) {
	if m.Committed {
		s.handleCommitTx(from, &wire.CommitTx{TxID: m.TxID, CT: m.CT})
		return
	}
	s.mu.Lock()
	_, ok := s.recovered[m.TxID]
	delete(s.recovered, m.TxID)
	s.mu.Unlock()
	if ok && s.tl != nil {
		s.tl.LogAbort(m.TxID)
	}
}

func (s *Server) handleGCBroadcast(m *wire.GCBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions {
		return
	}
	s.mu.Lock()
	if m.Oldest > s.peerOldest[p] {
		s.peerOldest[p] = m.Oldest
	}
	s.mu.Unlock()
}

// send transmits a message, ignoring delivery errors: the network rejects
// sends only during shutdown, when responses are moot.
func (s *Server) send(to transport.NodeID, m wire.Message) {
	_ = s.cfg.Network.Send(s.id, to, m)
}
