package core

import (
	"sync"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/replica"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/txlog"
	"wren/internal/wire"
)

// Default protocol timer intervals, shared with the replica runtime. The
// paper runs its stabilization protocols every 5 milliseconds (§V-A).
const (
	DefaultApplyInterval  = replica.DefaultApplyInterval
	DefaultGossipInterval = replica.DefaultGossipInterval
	DefaultGCInterval     = replica.DefaultGCInterval
	DefaultTxContextTTL   = replica.DefaultTxContextTTL
)

// ServerConfig configures one Wren partition server p_n^m.
type ServerConfig struct {
	// DC is the server's data center index m (0-based).
	DC int
	// Partition is the server's partition index n (0-based).
	Partition int
	// NumDCs is the number of replication sites M.
	NumDCs int
	// NumPartitions is the number of partitions per DC, N.
	NumPartitions int
	// Network delivers messages between nodes.
	Network transport.Network
	// ClockSource supplies physical time; distinct servers get distinct,
	// possibly skewed sources. Nil means the system clock.
	ClockSource hlc.Source
	// ApplyInterval is ΔR: how often committed transactions are applied and
	// replicated (Algorithm 4). Zero selects DefaultApplyInterval.
	ApplyInterval time.Duration
	// GossipInterval is ΔG: how often BiST stabilization gossip runs.
	// Zero selects DefaultGossipInterval.
	GossipInterval time.Duration
	// GCInterval is how often version-chain garbage collection runs.
	// Zero selects DefaultGCInterval; negative disables GC.
	GCInterval time.Duration
	// TxContextTTL bounds how long an inactive transaction context is kept
	// before being expired (a backstop for abandoned sessions). Zero
	// selects DefaultTxContextTTL.
	TxContextTTL time.Duration
	// RepairInterval paces the degraded-mode probation exit: how often a
	// server whose transaction log recorded a write-path failure (but whose
	// storage engine is healthy) attempts a full repair-and-readmit. Zero
	// selects replica.DefaultRepairInterval; negative disables automatic
	// repair, leaving a degraded server read-only until restart.
	RepairInterval time.Duration
	// BlockingCommit enables an ablation of CANToR: instead of relying on
	// the client-side cache, the coordinator delays the commit reply until
	// the commit timestamp is covered by the local stable snapshot — the
	// "simple solution" the paper rejects for its high commit latency
	// (§III-B). Off in the real protocol.
	BlockingCommit bool
	// GossipTree organizes the BiST exchange as an aggregation tree rooted
	// at partition 0 (paper §IV-B) instead of all-to-all broadcast:
	// 2(N−1) messages per round instead of N(N−1), at the cost of one
	// extra hop of staleness.
	GossipTree bool
	// StoreShards is the number of lock stripes in the version store.
	// Zero selects store.DefaultShards; the value is rounded up to a power
	// of two. More shards reduce lock contention on many-core machines.
	StoreShards int
	// StoreBackend selects the storage engine: backend.Memory (the ""
	// default) keeps versions only in memory; backend.WAL adds per-shard
	// append-only logs that are replayed on restart; backend.SST is the
	// memtable+sorted-run engine (WAL over the active memtable only,
	// immutable runs serving snapshot reads lock-free, merge compaction).
	StoreBackend string
	// DataDir is the root directory durable backends write under. The
	// server uses DataDir/dc<m>-p<n>, so servers of one deployment can
	// share a root. Required when StoreBackend is backend.WAL or
	// backend.SST.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never". Ignored by the memory backend.
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log that
	// durable backends get by default. With the log, PREPARE and
	// COMMIT records are written before the corresponding acknowledgement
	// leaves the server — the durability unit becomes the ACKNOWLEDGED
	// transaction — and a persisted per-DC replication cursor lets a
	// restarted server re-send the unreplicated tail. Without it the
	// durability unit regresses to the applied transaction (the pre-txlog
	// behaviour, kept for benchmarking the commit-logging cost). Ignored
	// by the memory backend, which has nowhere durable to recover from.
	DisableTxLog bool
	// MaxInflightPerConn bounds how many admitted requests a single client
	// connection may have outstanding on this server; past the bound, new
	// requests are shed with a BusyResp before any processing. Zero selects
	// replica.DefaultMaxInflightPerConn; negative disables admission
	// control.
	MaxInflightPerConn int
	// DisableDecisionBatch turns off the fsync=always coordinator-decision
	// group commit (the batching of commit-decision records across the
	// concurrent commit collections of one tick) so its cost can be
	// benchmarked. No effect under other fsync policies.
	DisableDecisionBatch bool
}

// runtimeConfig maps the public config onto the shared replica runtime's.
func (c *ServerConfig) runtimeConfig() replica.Config {
	return replica.Config{
		Name:           "core",
		DC:             c.DC,
		Partition:      c.Partition,
		NumDCs:         c.NumDCs,
		NumPartitions:  c.NumPartitions,
		Network:        c.Network,
		ClockSource:    c.ClockSource,
		ApplyInterval:  c.ApplyInterval,
		GossipInterval: c.GossipInterval,
		GCInterval:     c.GCInterval,
		TxContextTTL:   c.TxContextTTL,
		RepairInterval: c.RepairInterval,
		StoreShards:    c.StoreShards,
		StoreBackend:   c.StoreBackend,
		DataDir:        c.DataDir,
		FsyncPolicy:    c.FsyncPolicy,
		DisableTxLog:   c.DisableTxLog,

		MaxInflightPerConn:   c.MaxInflightPerConn,
		DisableDecisionBatch: c.DisableDecisionBatch,
	}
}

// txContext is the coordinator-side state of an open transaction
// (TX[id_T] in Algorithm 2). It is a value type stored in a striped map
// keyed by TxID, so looking one up on the read path touches only the
// stripe its TxID hashes to — never writer state.
type txContext struct {
	lt      hlc.Timestamp
	rt      hlc.Timestamp
	created time.Time
}

// cantorPred is the CANToR visibility predicate (Algorithm 3 lines 7–8) in
// reusable form: a pooled readScratch binds its visible method once, so a
// slice read updates three fields instead of allocating a fresh closure.
type cantorPred struct {
	localDC uint8
	lt, rt  hlc.Timestamp
}

func (p *cantorPred) visible(v *store.Version) bool {
	if v.SrcDC == p.localDC {
		return v.UT <= p.lt && v.RDT <= p.rt
	}
	return v.UT <= p.rt && v.RDT <= p.lt
}

// readScratch is the pooled per-read working set: the bound visibility
// predicate and the version result buffer handed to the engine's
// caller-buffer batch read. With it, a slice read allocates nothing in
// steady state.
type readScratch struct {
	pred    cantorPred
	visible store.VisibleFunc
	vers    []*store.Version
}

// Metrics exposes server-side counters for tests and the benchmark harness.
type Metrics struct {
	TxStarted     stats.Counter
	TxCommitted   stats.Counter
	SlicesServed  stats.Counter
	ReplTxApplied stats.Counter
	GCRemoved     stats.Counter
	GCKeysDropped stats.Counter
	CtxExpired    stats.Counter
}

// Server is one Wren partition server p_n^m: the protocol-specific half —
// the CANToR snapshot (two stable scalars) and the nonblocking read path —
// over the shared replica runtime, which owns the durable transaction
// lifecycle, recovery, and every background loop.
//
// The state split keeps the read path — handleStartTx, handleTxRead,
// handleSliceReq — off every mutex shared with the write path: the stable
// times are atomically published scalars, transaction contexts live in a
// striped map, and per-read working memory comes from pools — the paper's
// nonblocking-read property held at the implementation level.
type Server struct {
	cfg ServerConfig
	rt  *replica.Runtime
	// st aliases rt.Engine(); the zero-alloc slice-read path dereferences
	// it directly.
	st store.Engine

	// lst/rst are the stable times (LST, RST): lock-free monotonic
	// max-merge publication, loaded on every read.
	lst hlc.AtomicTimestamp
	rst hlc.AtomicTimestamp

	// txCtx holds open transaction contexts, keyed by TxID.
	txCtx *stripemap.Map[txContext]

	// readPool holds readScratch, fanPool holds fanin.Fanout scratch.
	readPool sync.Pool
	fanPool  sync.Pool

	// gossipMu guards the BiST aggregation arrays. Protocol-only state:
	// the runtime's writer mutex is never taken on the gossip path.
	gossipMu      sync.Mutex
	peerLocal     []hlc.Timestamp // per-partition gossiped local version clocks
	peerRemoteMin []hlc.Timestamp // per-partition gossiped min remote entries

	metrics Metrics
}

// NewServer constructs a Wren partition server. Call Start to register it
// on the network and launch its background protocols.
func NewServer(cfg ServerConfig) (*Server, error) {
	rcfg := cfg.runtimeConfig()
	rcfg.FillDefaults()
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}
	cfg.TxContextTTL = rcfg.TxContextTTL
	s := &Server{
		cfg:           cfg,
		txCtx:         stripemap.New[txContext](0),
		peerLocal:     make([]hlc.Timestamp, cfg.NumPartitions),
		peerRemoteMin: make([]hlc.Timestamp, cfg.NumPartitions),
	}
	rt, err := replica.New(rcfg, (*wrenProtocol)(s), replica.Counters{
		TxCommitted:   &s.metrics.TxCommitted,
		ReplTxApplied: &s.metrics.ReplTxApplied,
		GCRemoved:     &s.metrics.GCRemoved,
		GCKeysDropped: &s.metrics.GCKeysDropped,
	})
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.st = rt.Engine()
	s.readPool.New = func() any {
		rs := &readScratch{pred: cantorPred{localDC: uint8(cfg.DC)}}
		// Bind the method value once: reusing it is what keeps the
		// predicate allocation off the per-read path.
		rs.visible = rs.pred.visible
		return rs
	}
	s.fanPool.New = func() any { return &fanin.Fanout{} }
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() transport.NodeID { return s.rt.ID() }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store exposes the underlying storage engine (read-only use in tests).
func (s *Server) Store() store.Engine { return s.st }

// EngineHealthy reports the first write-path failure the storage engine
// has recorded, or nil while it is fully healthy. A durable backend keeps
// acknowledging from memory after a log failure, so this is the signal
// benchmarks and operators poll to catch silently degraded durability.
func (s *Server) EngineHealthy() error { return s.st.Healthy() }

// Healthy reports the first durability failure of the server's write path
// — storage engine or transaction log — or nil while both are intact.
// Unlike the earlier poll-only signal, the server ACTS on this one: a
// degraded server sheds into read-only admission (see ReadOnly).
func (s *Server) Healthy() error { return s.rt.Healthy() }

// ReadOnly reports whether the server has shed into read-only admission:
// new prepares and commits are refused with a typed error while reads keep
// their nonblocking path. It flips as soon as the engine or the
// transaction log records a write-path failure — an acknowledgement whose
// durability promise cannot be kept must not be issued — and flips back if
// a probation repair succeeds (see ServerConfig.RepairInterval).
func (s *Server) ReadOnly() bool { return s.rt.Healthy() != nil }

// TxLog exposes the transaction log (nil when disabled); read-only use in
// tests.
func (s *Server) TxLog() *txlog.Log { return s.rt.TxLog() }

// ShedRequests counts requests refused at per-connection admission (each
// answered with a BusyResp before any processing) since the server
// started.
func (s *Server) ShedRequests() uint64 { return s.rt.ShedCount() }

// Start registers the server on the network and launches the shared
// runtime's apply (ΔR), stabilization (ΔG), garbage-collection and
// lifecycle loops.
func (s *Server) Start() { s.rt.Start() }

// Stop terminates the background loops, flushes any transactions still on
// the commit list into the store, and closes the storage engine and the
// transaction log.
func (s *Server) Stop() { s.rt.Stop() }

// Kill stops the server WITHOUT the final apply/flush, simulating a hard
// kill for recovery tests: acknowledged-but-unapplied transactions stay
// out of the engine and must come back through transaction-log recovery.
func (s *Server) Kill() { s.rt.Kill() }

// StableTimes returns the server's current view of (LST, RST). The two
// scalars are loaded independently; each is monotone, and no protocol rule
// requires them to be read as a pair (StartTx re-establishes rt < lt
// itself).
func (s *Server) StableTimes() (lst, rst hlc.Timestamp) {
	return s.lst.Load(), s.rst.Load()
}

// VersionVector returns a copy of the server's version vector.
func (s *Server) VersionVector() []hlc.Timestamp {
	return s.rt.VV.Snapshot(nil)
}

// LocalVersionClock returns vv[m], the local snapshot installed by this
// partition.
func (s *Server) LocalVersionClock() hlc.Timestamp {
	return s.rt.VV.Load(s.cfg.DC)
}

// newTxID delegates to the runtime's durable id-block reservation.
func (s *Server) newTxID() uint64 { return s.rt.NewTxID() }

// visibleFunc builds the CANToR snapshot visibility predicate
// (Algorithm 3 lines 7–8): a local item is visible when ut ≤ lt ∧ rdt ≤ rt;
// a remote item when ut ≤ rt ∧ rdt ≤ lt.
func visibleFunc(localDC uint8, lt, rt hlc.Timestamp) store.VisibleFunc {
	return func(v *store.Version) bool {
		if v.SrcDC == localDC {
			return v.UT <= lt && v.RDT <= rt
		}
		return v.UT <= rt && v.RDT <= lt
	}
}

// wrenProtocol is the replica.Protocol implementation: the seam through
// which the shared runtime calls back into Wren's snapshot representation.
// It is a distinct type (not methods on Server) so the hook set stays out
// of the server's public API.
type wrenProtocol Server

func (p *wrenProtocol) server() *Server { return (*Server)(p) }

// AppendLocalPuts renders a locally committed transaction into engine
// versions: update time CT, remote dependency time RST, origin this DC.
func (p *wrenProtocol) AppendLocalPuts(dst []store.KV, t *txlog.CommittedTx, skip replica.SkipFunc) []store.KV {
	s := p.server()
	for _, kv := range t.Writes {
		if skip != nil && skip(kv.Key, t.TxID) {
			continue
		}
		dst = append(dst, store.KV{Key: kv.Key, Version: &store.Version{
			Value: kv.VersionValue(), UT: t.CT, RDT: t.RST, TxID: t.TxID, SrcDC: uint8(s.cfg.DC),
		}})
	}
	return dst
}

// AppendRemotePuts renders one replicated transaction from srcDC.
func (p *wrenProtocol) AppendRemotePuts(dst []store.KV, srcDC uint8, t *wire.ReplTx, skip replica.SkipFunc) []store.KV {
	for _, kv := range t.Writes {
		if skip != nil && skip(kv.Key, t.TxID) {
			continue
		}
		dst = append(dst, store.KV{Key: kv.Key, Version: &store.Version{
			Value: kv.VersionValue(), UT: t.CT, RDT: t.RST, TxID: t.TxID, SrcDC: srcDC,
		}})
	}
	return dst
}

// ReplTxRecord ships the scalar remote-dependency time with each
// replicated transaction — Wren's whole snapshot overhead is one
// timestamp (Figure 7a).
func (p *wrenProtocol) ReplTxRecord(t *txlog.CommittedTx) wire.ReplTx {
	return wire.ReplTx{TxID: t.TxID, CT: t.CT, RST: t.RST, Writes: t.Writes}
}

// ApplyBound reads the HLC and pins it, so any later prepare proposes
// strictly above the bound. Called under the runtime's writer mutex.
func (p *wrenProtocol) ApplyBound() hlc.Timestamp {
	s := p.server()
	ub := s.rt.Clock.Now()
	s.rt.Clock.Update(ub)
	return ub
}

// ObserveCommitTS absorbs an incoming commit timestamp into the HLC.
func (p *wrenProtocol) ObserveCommitTS(ct hlc.Timestamp) { p.server().rt.Clock.Update(ct) }

// AfterInstall is a no-op: Wren's reads never wait for installation —
// that is the point of the protocol.
func (p *wrenProtocol) AfterInstall() {}

// GossipTick runs one BiST round.
func (p *wrenProtocol) GossipTick() { p.server().gossipTick() }

// OldestActiveSnapshot expires abandoned transaction contexts and returns
// the oldest local snapshot time a surviving transaction still needs — or
// the current stable time when idle (paper §IV-B). The GC floor is loaded
// under the runtime's SnapMu barrier: every in-flight snapshot assignment
// drains first, so any context the Range below cannot see yet was assigned
// lt ≥ this floor and needs no protection from it.
func (p *wrenProtocol) OldestActiveSnapshot(now time.Time) hlc.Timestamp {
	s := p.server()
	s.rt.SnapMu.Lock()
	oldest := s.lst.Load()
	s.rt.SnapMu.Unlock()
	var expired []uint64
	s.txCtx.Range(func(id uint64, ctx txContext) bool {
		if now.Sub(ctx.created) > s.cfg.TxContextTTL {
			expired = append(expired, id)
			return true
		}
		if ctx.lt < oldest {
			oldest = ctx.lt
		}
		return true
	})
	for _, id := range expired {
		if _, ok := s.txCtx.LoadAndDelete(id); ok {
			s.metrics.CtxExpired.Inc()
		}
	}
	return oldest
}

// BeforeCommitReply implements the BlockingCommit ablation: hold the reply
// until the write is stable everywhere in the DC, making the client cache
// unnecessary — and commits slow (paper §III-B).
func (p *wrenProtocol) BeforeCommitReply(ct hlc.Timestamp) bool {
	s := p.server()
	if !s.cfg.BlockingCommit {
		return true
	}
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for s.lst.Load() < ct {
		select {
		case <-ticker.C:
		case <-s.rt.Stopping():
			return false
		}
	}
	return true
}

// OnStop is a no-op: Wren parks no readers.
func (p *wrenProtocol) OnStop(bool) {}

// HandleMessage dispatches the snapshot-carrying messages the runtime
// forwards to the protocol.
func (p *wrenProtocol) HandleMessage(from transport.NodeID, m wire.Message) {
	s := p.server()
	switch msg := m.(type) {
	case *wire.StartTxReq:
		s.handleStartTx(from, msg)
	case *wire.TxReadReq:
		s.handleTxRead(from, msg)
	case *wire.CommitReq:
		s.handleCommitReq(from, msg)
	case *wire.SliceReq:
		s.handleSliceReq(from, msg)
	case *wire.ScanReq:
		s.handleScanReq(from, msg)
	case *wire.PrepareReq:
		s.handlePrepareReq(from, msg)
	case *wire.StableBroadcast:
		s.handleStableBroadcast(msg)
	}
}

// handleStartTx implements Algorithm 2 lines 1–6: refresh the server's
// stable times with the client's, then assign the transaction snapshot
// (lst, min(rst, lst−1)). SnapMu is held SHARED around the assignment so
// GC's exclusive floor load can never miss a context it must protect.
func (s *Server) handleStartTx(from transport.NodeID, m *wire.StartTxReq) {
	s.lst.Advance(m.LST)
	s.rst.Advance(m.RST)
	id := s.rt.NewTxID()
	s.rt.SnapMu.RLock()
	lt := s.lst.Load()
	rt := hlc.Min(s.rst.Load(), lt.Prev())
	s.txCtx.Store(id, txContext{lt: lt, rt: rt, created: time.Now()})
	s.rt.SnapMu.RUnlock()

	s.metrics.TxStarted.Inc()
	s.rt.Send(from, &wire.StartTxResp{ReqID: m.ReqID, TxID: id, LST: lt, RST: rt})
}

// handleTxRead implements Algorithm 2 lines 7–16: fan the key set out to
// the responsible partitions and merge the slices via a completion-counter
// fan-in — the last arriving SliceResp assembles and sends the TxReadResp,
// so no goroutine parks per in-flight read and no server-wide lock is
// taken.
func (s *Server) handleTxRead(from transport.NodeID, m *wire.TxReadReq) {
	ctx, ok := s.txCtx.Load(m.TxID)
	if !ok {
		// Unknown (expired) transaction: reply empty so the client can fail fast.
		s.rt.Send(from, &wire.TxReadResp{ReqID: m.ReqID})
		return
	}
	lt, rt := ctx.lt, ctx.rt

	// Per-connection admission: a pooled link multiplexing thousands of
	// sessions must not be allowed to flood the fan-in tables; past the
	// bound the request is refused before any slice work happens, and the
	// client's retry policy backs off. Released when the last slice
	// arrives (here or in the runtime's SliceResp handler) or when the GC
	// sweep expires a stale fan-in.
	if !s.rt.AdmitClient(from) {
		s.rt.Shed(from, m.ReqID)
		return
	}

	fo := s.fanPool.Get().(*fanin.Fanout)
	fo.Reset(s.cfg.NumPartitions)
	for _, k := range m.Keys {
		fo.Add(sharding.PartitionOf(k, s.cfg.NumPartitions), k)
	}
	remote := len(fo.Touched)
	if len(fo.Groups[s.cfg.Partition]) > 0 {
		remote--
	}

	fi := fanin.Start(from, m.ReqID, remote)

	// Keys this partition owns are served locally with one batched store
	// read instead of a self-addressed SliceReq round trip, appending
	// straight into the response buffer: this runs before any remote
	// registration, so nothing can race the append and no staging copy
	// is paid.
	if localKeys := fo.Groups[s.cfg.Partition]; len(localKeys) > 0 {
		fi.SetItems(s.readSlice(localKeys, lt, rt, fi.Items()))
		s.metrics.SlicesServed.Inc()
	}

	for _, p := range fo.Touched {
		if p == s.cfg.Partition {
			continue
		}
		reqID := s.rt.NextReqID()
		req := wire.GetSliceReq()
		req.ReqID, req.LT, req.RT = reqID, lt, rt
		req.Keys = append(req.Keys[:0], fo.Groups[p]...)
		s.rt.TrackRead(reqID, fi)
		s.rt.Send(transport.ServerID(s.cfg.DC, p), req)
	}
	s.fanPool.Put(fo)

	// Release the coordinator's own contribution; when every remote slice
	// already answered (or none was needed), this assembles the response.
	if resp, to, last := fi.Finish(); last {
		s.rt.ReleaseClient(to)
		s.rt.Send(to, resp)
	}
}

// handleSliceReq implements Algorithm 3 lines 1–12: refresh stable times
// and return the freshest visible version of each key — without blocking
// and without acquiring any server-wide mutex. The response message and
// its item buffer come from pools; the receiver releases them.
func (s *Server) handleSliceReq(from transport.NodeID, m *wire.SliceReq) {
	s.lst.Advance(m.LT)
	s.rst.Advance(m.RT)

	resp := wire.GetSliceResp()
	resp.ReqID = m.ReqID
	resp.Items = s.readSlice(m.Keys, m.LT, m.RT, resp.Items[:0])
	s.metrics.SlicesServed.Inc()
	s.rt.Send(from, resp)
	wire.PutSliceReq(m)
}

// handleScanReq serves one partition's share of a range scan on the same
// nonblocking snapshot path as slice reads: the CANToR predicate decides
// visibility per version, the engine streams its keyspace in order, and
// nothing ever waits for replication. Tombstones are elided by the engine;
// a per-partition Limit truncates the stream and flags More so the client
// knows this partition was not exhausted.
func (s *Server) handleScanReq(from transport.NodeID, m *wire.ScanReq) {
	s.lst.Advance(m.LT)
	s.rst.Advance(m.RT)

	resp := &wire.ScanResp{ReqID: m.ReqID}
	rs := s.readPool.Get().(*readScratch)
	rs.pred.lt, rs.pred.rt = m.LT, m.RT
	// A scan error means a failed storage backend; it already surfaces
	// through Healthy and write admission, so the reply carries whatever
	// prefix was streamed before the fault.
	_ = s.st.Scan(m.Start, m.End, rs.visible, func(k string, v *store.Version) bool {
		if m.Limit > 0 && uint64(len(resp.Items)) >= m.Limit {
			resp.More = true
			return false
		}
		resp.Items = append(resp.Items, wire.Item{
			Key: k, Value: v.Value, UT: v.UT, RDT: v.RDT, TxID: v.TxID, SrcDC: v.SrcDC,
		})
		return true
	})
	s.readPool.Put(rs)
	s.metrics.SlicesServed.Inc()
	s.rt.Send(from, resp)
}

// readSlice resolves keys under the CANToR snapshot (lt, rt) with one
// batched store pass — one read-lock acquisition per touched shard — and
// appends the visible items to dst, which it returns. In steady state it
// allocates nothing: the bound predicate and the version buffer come from
// the server's read pool. A visible tombstone means the key is deleted in
// this snapshot — it hides older versions and is reported as absence (no
// item), like a key never written.
func (s *Server) readSlice(keys []string, lt, rt hlc.Timestamp, dst []wire.Item) []wire.Item {
	rs := s.readPool.Get().(*readScratch)
	rs.pred.lt, rs.pred.rt = lt, rt
	rs.vers = s.st.ReadVisibleBatchInto(keys, rs.visible, rs.vers)
	for i, v := range rs.vers {
		if v != nil && v.Value != nil {
			dst = append(dst, wire.Item{
				Key: keys[i], Value: v.Value, UT: v.UT, RDT: v.RDT, TxID: v.TxID, SrcDC: v.SrcDC,
			})
		}
	}
	clear(rs.vers) // don't pin GC-able version chains while idle in the pool
	s.readPool.Put(rs)
	return dst
}

// handleCommitReq resolves the transaction's snapshot and hands the 2PC to
// the runtime (Algorithm 2 lines 17–28); each cohort's PrepareReq carries
// the snapshot scalars and the proposal floor ht.
func (s *Server) handleCommitReq(from transport.NodeID, m *wire.CommitReq) {
	ctx, ok := s.txCtx.LoadAndDelete(m.TxID)
	var lt, rt hlc.Timestamp
	if ok {
		lt, rt = ctx.lt, ctx.rt
	} else {
		// Context expired (or read-only cleanup racing): fall back to the
		// server's current stable times; commit timestamps proposed below
		// still exceed every snapshot the client has seen via hwt.
		lt, rt = s.lst.Load(), s.rst.Load()
	}
	ht := hlc.Max(lt, rt, m.HWT) // Algorithm 2 line 19
	s.rt.Commit(from, m, func() *wire.PrepareReq {
		return &wire.PrepareReq{LT: lt, RT: rt, HT: ht}
	})
}

// handlePrepareReq refreshes the stable times and hands the cohort side of
// the 2PC to the runtime: propose strictly past everything the client has
// seen (Algorithm 3 lines 13–19).
func (s *Server) handlePrepareReq(from transport.NodeID, m *wire.PrepareReq) {
	s.lst.Advance(m.LT)
	s.rst.Advance(m.RT)
	s.rt.Prepare(from, m, hlc.Max(m.HT, m.LT, m.RT))
}

// handleStableBroadcast ingests a peer partition's BiST contribution and
// recomputes the DC-stable times (Algorithm 4 lines 29–31). Aggregated
// messages (tree topology) carry the final LST/RST directly.
func (s *Server) handleStableBroadcast(m *wire.StableBroadcast) {
	if m.Aggregate {
		s.lst.Advance(m.Local)
		s.rst.Advance(m.RemoteMin)
		return
	}
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions {
		return
	}
	s.gossipMu.Lock()
	if m.Local > s.peerLocal[p] {
		s.peerLocal[p] = m.Local
	}
	if m.RemoteMin > s.peerRemoteMin[p] {
		s.peerRemoteMin[p] = m.RemoteMin
	}
	s.recomputeStableLocked()
	s.gossipMu.Unlock()
}

// recomputeStableLocked folds the gossiped per-partition contributions into
// the published LST and RST. Both are monotone because each peer's
// contributions are; publication is an atomic max-merge, so readers load
// them without touching gossipMu.
func (s *Server) recomputeStableLocked() {
	lst := s.peerLocal[0]
	rst := s.peerRemoteMin[0]
	for i := 1; i < s.cfg.NumPartitions; i++ {
		if s.peerLocal[i] < lst {
			lst = s.peerLocal[i]
		}
		if s.peerRemoteMin[i] < rst {
			rst = s.peerRemoteMin[i]
		}
	}
	s.lst.Advance(lst)
	s.rst.Advance(rst)
}

// localContribution returns this server's own BiST scalars: its local
// version clock and the minimum over its remote version-vector entries.
// The vector is loaded entry-by-entry from the runtime's atomic vector;
// each entry is monotone, so the min over entries loaded at slightly
// different instants is still a valid (conservative) remote floor.
func (s *Server) localContribution() (local, remoteMin hlc.Timestamp) {
	local = s.rt.VV.Load(s.cfg.DC)
	if s.cfg.NumDCs == 1 {
		// With a single site there are no remote dependencies; the remote
		// stable time tracks the local one.
		return local, local
	}
	first := true
	for i := 0; i < s.cfg.NumDCs; i++ {
		if i == s.cfg.DC {
			continue
		}
		if t := s.rt.VV.Load(i); first || t < remoteMin {
			remoteMin = t
			first = false
		}
	}
	return local, remoteMin
}

// gossipTick runs one BiST exchange: fold in this server's own
// contribution, then broadcast — all-to-all, or up/down the aggregation
// tree when GossipTree is on.
func (s *Server) gossipTick() {
	local, remoteMin := s.localContribution()
	s.gossipMu.Lock()
	if local > s.peerLocal[s.cfg.Partition] {
		s.peerLocal[s.cfg.Partition] = local
	}
	if remoteMin > s.peerRemoteMin[s.cfg.Partition] {
		s.peerRemoteMin[s.cfg.Partition] = remoteMin
	}
	s.recomputeStableLocked()
	s.gossipMu.Unlock()
	lst, rst := s.lst.Load(), s.rst.Load()

	if s.cfg.GossipTree {
		if s.cfg.Partition == 0 {
			// Root: push the aggregated stable times down the tree.
			agg := &wire.StableBroadcast{
				Partition: 0, Aggregate: true, Local: lst, RemoteMin: rst,
			}
			for p := 1; p < s.cfg.NumPartitions; p++ {
				s.rt.SendBounded(transport.ServerID(s.cfg.DC, p), agg)
			}
			return
		}
		// Leaf: report the local contribution to the root only.
		s.rt.SendBounded(transport.ServerID(s.cfg.DC, 0), &wire.StableBroadcast{
			Partition: uint16(s.cfg.Partition), Local: local, RemoteMin: remoteMin,
		})
		return
	}

	msg := &wire.StableBroadcast{
		Partition: uint16(s.cfg.Partition), Local: local, RemoteMin: remoteMin,
	}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.rt.SendBounded(transport.ServerID(s.cfg.DC, p), msg)
	}
}

var _ replica.Protocol = (*wrenProtocol)(nil)
