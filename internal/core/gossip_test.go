package core

import (
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
)

// newTreeCluster builds a single-DC cluster using tree-based BiST.
func newTreeCluster(t *testing.T, parts int) (*transport.Memory, []*Server) {
	t.Helper()
	net := transport.NewMemory(transport.UniformLatency(100*time.Microsecond, 5*time.Millisecond))
	servers := make([]*Server, parts)
	for p := 0; p < parts; p++ {
		srv, err := NewServer(ServerConfig{
			DC: 0, Partition: p, NumDCs: 1, NumPartitions: parts,
			Network:        net,
			ApplyInterval:  time.Millisecond,
			GossipInterval: time.Millisecond,
			GCInterval:     -1,
			GossipTree:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[p] = srv
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Stop()
		}
		net.Close()
	})
	return net, servers
}

func TestTreeGossipStabilizes(t *testing.T) {
	net, servers := newTreeCluster(t, 4)
	c, err := NewClient(ClientConfig{
		DC: 0, ClientIndex: 1, NumPartitions: 4, Network: net,
		CoordinatorPartition: 2, RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ct := commitKV(t, c, map[string]string{"tree-key": "v"})

	// Every partition — leaves included — must learn an LST covering the
	// commit through the aggregation tree.
	eventually(t, 3*time.Second, "all partitions reach LST >= ct", func() bool {
		for _, s := range servers {
			lst, _ := s.StableTimes()
			if lst < ct {
				return false
			}
		}
		return true
	})

	// And a fresh client can read the value through its snapshot.
	other, err := NewClient(ClientConfig{
		DC: 0, ClientIndex: 2, NumPartitions: 4, Network: net,
		CoordinatorPartition: 3, RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := readKeys(t, other, "tree-key")
	if string(got["tree-key"]) != "v" {
		t.Fatalf("read %q through tree-stabilized snapshot", got["tree-key"])
	}
}

func TestTreeGossipLSTMonotone(t *testing.T) {
	_, servers := newTreeCluster(t, 3)
	deadline := time.Now().Add(300 * time.Millisecond)
	prev := make([]hlc.Timestamp, len(servers))
	for time.Now().Before(deadline) {
		for i, s := range servers {
			lst, _ := s.StableTimes()
			if lst < prev[i] {
				t.Fatalf("partition %d LST went backwards: %v -> %v", i, prev[i], lst)
			}
			prev[i] = lst
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The tree must have made progress at all.
	for i, s := range servers {
		lst, _ := s.StableTimes()
		if lst == 0 {
			t.Fatalf("partition %d LST never advanced under tree gossip", i)
		}
	}
}
