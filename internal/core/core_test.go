package core

import (
	"fmt"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
)

// testCluster wires up M DCs x N partitions of Wren servers over an
// in-memory network with fast protocol timers.
type testCluster struct {
	t       *testing.T
	net     *transport.Memory
	servers [][]*Server // [dc][partition]
	dcs     int
	parts   int
	clients []*Client
}

type clusterOpts struct {
	dcs, parts  int
	interDC     time.Duration
	gossipEvery time.Duration
	applyEvery  time.Duration
	gcEvery     time.Duration
	skew        func(dc, partition int) time.Duration
}

func newTestCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	if opts.interDC == 0 {
		opts.interDC = 5 * time.Millisecond
	}
	if opts.gossipEvery == 0 {
		opts.gossipEvery = time.Millisecond
	}
	if opts.applyEvery == 0 {
		opts.applyEvery = time.Millisecond
	}
	if opts.gcEvery == 0 {
		opts.gcEvery = -1 // disabled unless a test opts in
	}
	net := transport.NewMemory(transport.UniformLatency(100*time.Microsecond, opts.interDC))
	tc := &testCluster{t: t, net: net, dcs: opts.dcs, parts: opts.parts}
	for dc := 0; dc < opts.dcs; dc++ {
		row := make([]*Server, opts.parts)
		for p := 0; p < opts.parts; p++ {
			var src hlc.Source = hlc.SystemSource{}
			if opts.skew != nil {
				src = hlc.OffsetSource{Base: hlc.SystemSource{}, Offset: opts.skew(dc, p)}
			}
			srv, err := NewServer(ServerConfig{
				DC: dc, Partition: p,
				NumDCs: opts.dcs, NumPartitions: opts.parts,
				Network:        net,
				ClockSource:    src,
				ApplyInterval:  opts.applyEvery,
				GossipInterval: opts.gossipEvery,
				GCInterval:     opts.gcEvery,
			})
			if err != nil {
				t.Fatalf("NewServer: %v", err)
			}
			row[p] = srv
			srv.Start()
		}
		tc.servers = append(tc.servers, row)
	}
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	for _, row := range tc.servers {
		for _, s := range row {
			s.Stop()
		}
	}
	tc.net.Close()
}

func (tc *testCluster) client(dc int) *Client {
	tc.t.Helper()
	c, err := NewClient(ClientConfig{
		DC:                   dc,
		ClientIndex:          len(tc.clients),
		NumPartitions:        tc.parts,
		Network:              tc.net,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		tc.t.Fatalf("NewClient: %v", err)
	}
	tc.clients = append(tc.clients, c)
	return c
}

// commitKV runs a single-transaction write of the given pairs.
func commitKV(t *testing.T, c *Client, kvs map[string]string) hlc.Timestamp {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for k, v := range kvs {
		if err := tx.Write(k, []byte(v)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return ct
}

// readKeys runs a read-only transaction over the keys and aborts it.
func readKeys(t *testing.T, c *Client, keys ...string) map[string][]byte {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	got, err := tx.Read(keys...)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("Commit(read-only): %v", err)
	}
	return got
}

// eventually polls cond until it is true or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, what)
}

func TestCommitAndReadBack(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"alpha": "1"})
	// The client cache serves the value immediately; after stabilization a
	// fresh client must see it through the snapshot as well.
	if got := readKeys(t, c, "alpha"); string(got["alpha"]) != "1" {
		t.Fatalf("read-your-writes failed: %q", got["alpha"])
	}
	other := tc.client(0)
	eventually(t, 2*time.Second, "other client sees committed write", func() bool {
		got := readKeys(t, other, "alpha")
		return string(got["alpha"]) == "1"
	})
}

func TestReadYourWritesBeforeStabilization(t *testing.T) {
	// Gossip is made glacial so the LST cannot advance past the commit:
	// the value must come from the client-side cache (CANToR's second
	// snapshot component).
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, gossipEvery: time.Hour})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"k": "v1"})
	if c.CacheSize() == 0 {
		t.Fatal("committed write should be in the client cache")
	}
	got := readKeys(t, c, "k")
	if string(got["k"]) != "v1" {
		t.Fatalf("read-your-writes via cache failed: %q", got["k"])
	}
	// A different client must NOT see it (snapshot hasn't advanced).
	other := tc.client(0)
	if got := readKeys(t, other, "k"); got["k"] != nil {
		t.Fatalf("other client saw uninstalled write: %q", got["k"])
	}
}

func TestCachePrunedAfterStabilization(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	ct := commitKV(t, c, map[string]string{"k": "v1"})
	if c.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.CacheSize())
	}
	eventually(t, 2*time.Second, "LST covers the commit", func() bool {
		lst, _ := tc.servers[0][0].StableTimes()
		return lst >= ct
	})
	// The next Begin prunes the cache (Algorithm 1 line 6).
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _, _ = tx.Commit() }()
	if c.CacheSize() != 0 {
		t.Fatalf("cache not pruned: size = %d", c.CacheSize())
	}
}

func TestSnapshotInvariantRemoteBelowLocal(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c := tc.client(0)
	for i := 0; i < 20; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		lt, rt := tx.Snapshot()
		if lt > 0 && rt >= lt {
			t.Fatalf("snapshot invariant violated: rt=%v >= lt=%v", rt, lt)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSnapshotMonotonicPerClient(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	var prevLT, prevRT hlc.Timestamp
	for i := 0; i < 30; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		lt, rt := tx.Snapshot()
		if lt < prevLT || rt < prevRT {
			t.Fatalf("snapshot went backwards: (%v,%v) after (%v,%v)", lt, rt, prevLT, prevRT)
		}
		prevLT, prevRT = lt, rt
		if err := tx.Write(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAtomicMultiPartitionWrites(t *testing.T) {
	// Writer updates two keys on different partitions in each transaction;
	// readers must never observe them out of sync.
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 4})
	writer := tc.client(0)
	reader := tc.client(0)

	// Find two keys on different partitions.
	kx, ky := keysOnDistinctPartitions(4)

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			val := fmt.Sprintf("%d", i)
			tx, err := writer.Begin()
			if err != nil {
				writerDone <- err
				return
			}
			_ = tx.Write(kx, []byte(val))
			_ = tx.Write(ky, []byte(val))
			if _, err := tx.Commit(); err != nil {
				writerDone <- err
				return
			}
		}
	}()

	deadline := time.Now().Add(1500 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		got := readKeys(t, reader, kx, ky)
		x, y := string(got[kx]), string(got[ky])
		if x != y {
			t.Fatalf("atomicity violated: %s=%q %s=%q", kx, x, ky, y)
		}
		reads++
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if reads < 10 {
		t.Fatalf("only %d reads completed; cluster too slow to be meaningful", reads)
	}
}

// keysOnDistinctPartitions returns two keys mapping to different partitions.
func keysOnDistinctPartitions(parts int) (string, string) {
	kx := "x0"
	for i := 0; ; i++ {
		ky := fmt.Sprintf("y%d", i)
		if partitionDiffers(kx, ky, parts) {
			return kx, ky
		}
	}
}

func partitionDiffers(a, b string, parts int) bool {
	return partitionOfForTest(a, parts) != partitionOfForTest(b, parts)
}

func TestReadsNeverBlock(t *testing.T) {
	// One partition's physical clock is 50ms in the future; in Cure this
	// forces reads on other partitions to wait out the skew. Wren must
	// answer instantly and report zero blocking.
	tc := newTestCluster(t, clusterOpts{
		dcs: 1, parts: 4,
		skew: func(dc, p int) time.Duration {
			if p == 1 {
				return 50 * time.Millisecond
			}
			return 0
		},
	})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"})
	for i := 0; i < 20; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := tx.Read("a", "b", "c", "d"); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if tx.BlockedMicros != 0 {
			t.Fatalf("Wren read reported blocking: %dµs", tx.BlockedMicros)
		}
		if elapsed > 40*time.Millisecond {
			t.Fatalf("read took %v; nonblocking reads must not wait out clock skew", elapsed)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCausalityAcrossDCs(t *testing.T) {
	// Client in DC0 writes x=1 then y=1 in separate transactions (y causally
	// depends on x). A DC1 reader that sees y must also see x.
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	w := tc.client(0)
	r := tc.client(1)

	commitKV(t, w, map[string]string{"causal-x": "1"})
	commitKV(t, w, map[string]string{"causal-y": "1"})

	eventually(t, 5*time.Second, "y visible in DC1", func() bool {
		got := readKeys(t, r, "causal-y", "causal-x")
		if got["causal-y"] == nil {
			return false
		}
		if got["causal-x"] == nil {
			t.Fatalf("causality violated: y visible without x")
		}
		return true
	})
}

func TestLWWConvergenceAcrossDCs(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 3, parts: 2})
	// Concurrent conflicting writes to the same key from every DC.
	for dc := 0; dc < 3; dc++ {
		c := tc.client(dc)
		commitKV(t, c, map[string]string{"conflict": fmt.Sprintf("dc%d", dc)})
	}
	// All DCs must converge to the same winner on every replica.
	eventually(t, 5*time.Second, "replicas converge", func() bool {
		var want string
		for dc := 0; dc < 3; dc++ {
			v := tc.servers[dc][partitionOfForTest("conflict", 2)].Store().Latest("conflict")
			if v == nil {
				return false
			}
			if dc == 0 {
				want = string(v.Value)
			} else if string(v.Value) != want {
				return false
			}
		}
		return true
	})
}

func TestAvailabilityUnderInterDCPartition(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c0 := tc.client(0)

	// Let stabilization warm up, then cut the WAN link.
	time.Sleep(50 * time.Millisecond)
	tc.net.SetDCLinkDown(0, 1, true)

	// DC0 must keep serving transactions (availability).
	start := time.Now()
	commitKV(t, c0, map[string]string{"avail": "yes"})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("commit during partition took %v", elapsed)
	}
	got := readKeys(t, c0, "avail")
	if string(got["avail"]) != "yes" {
		t.Fatal("local read failed during partition")
	}

	// RST must stall while partitioned (no remote progress).
	_, rstBefore := tc.servers[0][0].StableTimes()
	time.Sleep(100 * time.Millisecond)
	_, rstDuring := tc.servers[0][0].StableTimes()
	// Allow a small catch-up from messages sent before the cut.
	if rstDuring > rstBefore {
		delta := rstDuring.Physical() - rstBefore.Physical()
		if delta > (50 * time.Millisecond).Microseconds() {
			t.Fatalf("RST advanced %dµs during partition", delta)
		}
	}

	// Heal: the write must reach DC1 and RST must resume.
	tc.net.SetDCLinkDown(0, 1, false)
	r1 := tc.client(1)
	eventually(t, 5*time.Second, "DC1 sees write after heal", func() bool {
		got := readKeys(t, r1, "avail")
		return string(got["avail"]) == "yes"
	})
}

func TestGarbageCollectionPrunesOldVersions(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, gcEvery: 20 * time.Millisecond})
	c := tc.client(0)
	key := "hot"
	for i := 0; i < 50; i++ {
		commitKV(t, c, map[string]string{key: fmt.Sprintf("v%d", i)})
	}
	srv := tc.servers[0][partitionOfForTest(key, 2)]
	eventually(t, 3*time.Second, "version chain pruned", func() bool {
		return srv.Store().VersionsOf(key) <= 3 && srv.Metrics().GCRemoved.Load() > 0
	})
	// The latest value must survive GC.
	got := readKeys(t, tc.client(0), key)
	eventuallyValue := string(got[key])
	if eventuallyValue == "" {
		t.Fatal("value lost after GC")
	}
}

func TestReadOnlyTransactionCommitsAtZero(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read("whatever"); err != nil {
		t.Fatal(err)
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct != 0 {
		t.Fatalf("read-only commit timestamp = %v, want 0", ct)
	}
}

func TestRepeatableReads(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"rr": "v1"})
	other := tc.client(0)
	eventually(t, 2*time.Second, "value visible", func() bool {
		return string(readKeys(t, other, "rr")["rr"]) == "v1"
	})

	tx, err := other.Begin()
	if err != nil {
		t.Fatal(err)
	}
	first, err := tx.Read("rr")
	if err != nil {
		t.Fatal(err)
	}
	// Another client overwrites between the two reads.
	commitKV(t, c, map[string]string{"rr": "v2"})
	time.Sleep(50 * time.Millisecond)
	second, err := tx.Read("rr")
	if err != nil {
		t.Fatal(err)
	}
	if string(first["rr"]) != string(second["rr"]) {
		t.Fatalf("repeatable read violated: %q then %q", first["rr"], second["rr"])
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSetReadBack(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("w", []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	got, err := tx.Read("w")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["w"]) != "uncommitted" {
		t.Fatalf("transaction must read its own buffered write, got %q", got["w"])
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingKeyAbsent(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	got := readKeys(t, c, "never-written")
	if _, ok := got["never-written"]; ok {
		t.Fatal("missing key should be absent from result")
	}
}

func TestTxLifecycleErrors(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	c := tc.client(0)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err != ErrTxOpen {
		t.Fatalf("second Begin = %v, want ErrTxOpen", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != ErrTxDone {
		t.Fatalf("double Commit = %v, want ErrTxDone", err)
	}
	if _, err := tx.Read("k"); err != ErrTxDone {
		t.Fatalf("Read after Commit = %v, want ErrTxDone", err)
	}
	if err := tx.Write("k", nil); err != ErrTxDone {
		t.Fatalf("Write after Commit = %v, want ErrTxDone", err)
	}

	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := tx2.Abort(); err != ErrTxDone {
		t.Fatalf("double Abort = %v, want ErrTxDone", err)
	}
	// After abort a new transaction can start.
	tx3, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}

	c.Close()
	if _, err := c.Begin(); err != ErrClosed {
		t.Fatalf("Begin after Close = %v, want ErrClosed", err)
	}
}

func TestConfigValidation(t *testing.T) {
	net := transport.NewMemory(nil)
	defer net.Close()
	bad := []ServerConfig{
		{NumDCs: 0, NumPartitions: 1, Network: net},
		{NumDCs: 1, NumPartitions: 0, Network: net},
		{DC: 5, NumDCs: 2, NumPartitions: 1, Network: net},
		{Partition: 9, NumDCs: 1, NumPartitions: 2, Network: net},
		{NumDCs: 1, NumPartitions: 1, Network: nil},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewClient(ClientConfig{Network: nil, NumPartitions: 1}); err == nil {
		t.Error("client without network should be rejected")
	}
	if _, err := NewClient(ClientConfig{Network: net, NumPartitions: 0}); err == nil {
		t.Error("client without partitions should be rejected")
	}
}

func TestVersionVectorAndStableTimesMonotone(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c := tc.client(0)
	srv := tc.servers[0][0]
	var prevLST, prevRST, prevVC hlc.Timestamp
	for i := 0; i < 30; i++ {
		commitKV(t, c, map[string]string{fmt.Sprintf("m%d", i): "v"})
		lst, rst := srv.StableTimes()
		vc := srv.LocalVersionClock()
		if lst < prevLST || rst < prevRST || vc < prevVC {
			t.Fatalf("monotonicity violated: lst %v->%v rst %v->%v vc %v->%v",
				prevLST, lst, prevRST, rst, prevVC, vc)
		}
		prevLST, prevRST, prevVC = lst, rst, vc
	}
	vv := srv.VersionVector()
	if len(vv) != 2 {
		t.Fatalf("version vector has %d entries, want 2", len(vv))
	}
}
