package core

import (
	"path/filepath"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/store/wal"
	"wren/internal/transport"
	"wren/internal/wire"
)

// respRecorder captures the cohort's replies to a fake coordinator.
type respRecorder struct{ ch chan wire.Message }

func (r *respRecorder) HandleMessage(_ transport.NodeID, m wire.Message) { r.ch <- m }

// TestStopFlushesCommittedDespiteStuckPrepared guards the shutdown
// durability contract: a transaction on the commit list must reach the
// storage engine during Stop even when an unrelated prepared-but-never-
// committed transaction's proposed timestamp sits below its commit time
// (which would otherwise hold the apply upper bound under it forever).
func TestStopFlushesCommittedDespiteStuckPrepared(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewMemory(transport.UniformLatency(50*time.Microsecond, time.Millisecond))
	defer net.Close()
	srv, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1,
		Network: net,
		// Timers long enough that the Stop flush is the only apply tick.
		ApplyInterval:  time.Hour,
		GossipInterval: time.Hour,
		GCInterval:     -1,
		StoreBackend:   "wal", DataDir: dir, FsyncPolicy: "always",
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Start()

	rec := &respRecorder{ch: make(chan wire.Message, 4)}
	recID := transport.ClientID(0, 1)
	net.Register(recID, rec)
	send := func(m wire.Message) {
		t.Helper()
		if err := net.Send(recID, srv.ID(), m); err != nil {
			t.Fatalf("send %v: %v", m.Kind(), err)
		}
	}
	waitPT := func() hlc.Timestamp {
		t.Helper()
		select {
		case m := <-rec.ch:
			pr, ok := m.(*wire.PrepareResp)
			if !ok {
				t.Fatalf("unexpected reply %T", m)
			}
			return pr.PT
		case <-time.After(5 * time.Second):
			t.Fatal("no PrepareResp")
			return 0
		}
	}

	// Transaction 2 prepares first (lower proposed timestamp) and stalls
	// forever — its coordinator never sends CommitTx.
	send(&wire.PrepareReq{ReqID: 1, TxID: 2, Writes: []wire.KV{{Key: "stuck", Value: []byte("x")}}})
	_ = waitPT()
	// Transaction 1 prepares later and commits at its proposed timestamp,
	// which is strictly above transaction 2's.
	send(&wire.PrepareReq{ReqID: 2, TxID: 1, Writes: []wire.KV{{Key: "durable", Value: []byte("yes")}}})
	pt := waitPT()
	send(&wire.CommitTx{TxID: 1, CT: pt})

	// Wait until the CommitTx lands on the commit list.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.rt.CommitQueueLen() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("CommitTx never reached the commit list")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Stop()

	// Reopen the WAL the server wrote: the acknowledged commit must have
	// been flushed; the never-committed prepared write must not exist.
	eng, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "dc0-p0")})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	defer eng.Close()
	if v := eng.Latest("durable"); v == nil || string(v.Value) != "yes" {
		t.Fatalf("acknowledged commit lost across shutdown: Latest(durable) = %+v", v)
	}
	if v := eng.Latest("stuck"); v != nil {
		t.Fatalf("never-committed prepared write leaked into the store: %+v", v)
	}
}
