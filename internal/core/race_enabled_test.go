//go:build race

package core

// raceEnabled reports that this test binary was built with -race, whose
// sync.Pool instrumentation adds bookkeeping allocations that would fail
// the exact allocation pins.
const raceEnabled = true
