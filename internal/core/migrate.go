package core

import (
	"fmt"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

// Migrate moves the client session to a different DC, implementing the
// extension sketched in the paper's footnote 1 (§II-A): the client blocks
// until the last snapshot it has seen — and its own writes — have been
// installed in the new DC, then continues with full session guarantees.
//
// Concretely, the client's causal past consists of:
//   - local items of the old DC up to lst_c and its own writes up to
//     hwt_c: both are *remote* items from the new DC's perspective, so the
//     new DC must have rst' ≥ max(lst_c, hwt_c);
//   - remote items up to rst_c (which includes items originating in the
//     new DC, local there): covered once lst' ≥ rst_c and rst' ≥ rst_c.
//
// The probe transactions piggyback zero stable times so they can never
// advance the new DC's view beyond what it actually installed. Once the
// conditions hold, the session adopts the new DC's snapshot and clears its
// write cache (everything in it is now covered by the new snapshot).
func (c *Client) Migrate(newDC, coordinatorPartition int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.tx != nil {
		c.mu.Unlock()
		return ErrTxOpen
	}
	needRemote := hlc.Max(c.lst, c.hwt, c.rst)
	needLocal := c.rst
	oldDC := c.cfg.DC
	c.mu.Unlock()

	if newDC == oldDC {
		return nil
	}
	if coordinatorPartition < 0 || coordinatorPartition >= c.cfg.NumPartitions {
		return fmt.Errorf("core: coordinator partition %d out of range", coordinatorPartition)
	}

	coord := transport.ServerID(newDC, coordinatorPartition)
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	for {
		// Probe the new DC's stable snapshot without polluting it.
		reqID := c.reqSeq.Add(1)
		resp, err := c.call(coord, reqID, &wire.StartTxReq{ReqID: reqID})
		if err != nil {
			return fmt.Errorf("core: migration probe: %w", err)
		}
		st, ok := resp.(*wire.StartTxResp)
		if !ok {
			return fmt.Errorf("core: unexpected response %T to migration probe", resp)
		}
		// Release the probe's transaction context right away.
		cleanupID := c.reqSeq.Add(1)
		if _, err := c.call(coord, cleanupID, &wire.CommitReq{ReqID: cleanupID, TxID: st.TxID}); err != nil {
			return fmt.Errorf("core: migration probe cleanup: %w", err)
		}

		if st.RST >= needRemote && st.LST >= needLocal && st.RST >= needLocal {
			// The new DC has installed the session's entire causal past:
			// adopt its snapshot and move the session. The node id moves
			// too, so the network treats the client as resident in the
			// new DC from here on.
			c.mu.Lock()
			c.cfg.DC = newDC
			c.cfg.CoordinatorPartition = coordinatorPartition
			c.id = transport.ClientID(newDC, c.cfg.ClientIndex)
			c.cfg.Network.Register(c.id, c)
			c.lst = st.LST
			c.rst = st.RST
			// Every cached write has ct ≤ hwt ≤ rst' and is therefore
			// visible through the new snapshot.
			c.cache = make(map[string]cacheEntry)
			c.mu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: new DC %d has not installed the session's snapshot", ErrTimeout, newDC)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// DC returns the client's current data center.
func (c *Client) DC() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.DC
}
