package core

import (
	"fmt"
	"testing"
	"time"
)

func scanKeys(kvs []ScanKV) []string {
	keys := make([]string, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	return keys
}

func TestTxScan(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 3})
	c := tc.client(0)

	kvs := map[string]string{}
	for i := 0; i < 20; i++ {
		kvs[fmt.Sprintf("scan-%02d", i)] = fmt.Sprintf("v%02d", i)
	}
	commitKV(t, c, kvs)

	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := tx.Delete("scan-05"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("Commit(delete): %v", err)
	}

	// Same-session scan: the client cache overlays the snapshot, so every
	// committed write (and the delete) is observed immediately.
	tx, err = c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	got, err := tx.Scan("scan-", "scan-zz", 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 19 {
		t.Fatalf("full scan returned %d keys (%v), want 19", len(got), scanKeys(got))
	}
	for i, kv := range got {
		if i > 0 && got[i-1].Key >= kv.Key {
			t.Fatalf("scan out of order: %q before %q", got[i-1].Key, kv.Key)
		}
		if kv.Key == "scan-05" {
			t.Fatal("deleted key scan-05 in scan results")
		}
		if want := "v" + kv.Key[len("scan-"):]; string(kv.Value) != want {
			t.Fatalf("key %s scanned %q, want %q", kv.Key, kv.Value, want)
		}
	}

	// Bounded range: [scan-10, scan-13).
	got, err = tx.Scan("scan-10", "scan-13", 0)
	if err != nil {
		t.Fatalf("Scan(bounded): %v", err)
	}
	if want := []string{"scan-10", "scan-11", "scan-12"}; fmt.Sprint(scanKeys(got)) != fmt.Sprint(want) {
		t.Fatalf("bounded scan = %v, want %v", scanKeys(got), want)
	}

	// Limit: the first 5 keys of the range.
	got, err = tx.Scan("scan-", "", 5)
	if err != nil {
		t.Fatalf("Scan(limit): %v", err)
	}
	if want := []string{"scan-00", "scan-01", "scan-02", "scan-03", "scan-04"}; fmt.Sprint(scanKeys(got)) != fmt.Sprint(want) {
		t.Fatalf("limited scan = %v, want %v", scanKeys(got), want)
	}

	// Uncommitted overlay: this transaction's own writes and deletes win.
	if err := tx.Write("scan-035", []byte("inserted")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("scan-07"); err != nil {
		t.Fatal(err)
	}
	got, err = tx.Scan("scan-03", "scan-09", 0)
	if err != nil {
		t.Fatalf("Scan(overlay): %v", err)
	}
	if want := []string{"scan-03", "scan-035", "scan-04", "scan-06", "scan-08"}; fmt.Sprint(scanKeys(got)) != fmt.Sprint(want) {
		t.Fatalf("overlay scan = %v, want %v", scanKeys(got), want)
	}
	if string(got[1].Value) != "inserted" {
		t.Fatalf("overlay value = %q, want inserted", got[1].Value)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}

	// Pure server-side path: a fresh session has no cache, so results come
	// entirely from the partitions' stable snapshots once they cover the
	// commits.
	c2 := tc.client(0)
	eventually(t, 5*time.Second, "scan visible from a fresh session", func() bool {
		tx, err := c2.Begin()
		if err != nil {
			return false
		}
		defer tx.Abort()
		got, err := tx.Scan("scan-", "scan-zz", 0)
		if err != nil || len(got) != 19 {
			return false
		}
		for i, kv := range got {
			if i > 0 && got[i-1].Key >= kv.Key {
				return false
			}
			if kv.Key == "scan-05" {
				return false
			}
		}
		return true
	})
}
