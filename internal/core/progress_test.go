package core

import (
	"fmt"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
)

// TestRSTProgressWhenIdle verifies the heartbeat mechanism of Algorithm 4
// (lines 18-21): with no transactions committing anywhere, remote stable
// time must still advance, because idle partitions heartbeat their peers.
func TestRSTProgressWhenIdle(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	srv := tc.servers[0][0]

	// Warm up stabilization, take a reading, wait, take another.
	time.Sleep(100 * time.Millisecond)
	_, rst1 := srv.StableTimes()
	if rst1 == 0 {
		t.Fatal("RST never initialized")
	}
	time.Sleep(100 * time.Millisecond)
	_, rst2 := srv.StableTimes()
	if rst2 <= rst1 {
		t.Fatalf("RST did not advance while idle: %v -> %v (heartbeats broken)", rst1, rst2)
	}
	// Progress should be close to wall time: at least half the elapsed
	// interval (heartbeats every ΔR=1ms, gossip every 1ms, WAN 5ms).
	if delta := rst2.Physical() - rst1.Physical(); delta < (50 * time.Millisecond).Microseconds() {
		t.Fatalf("RST advanced only %dµs in 100ms of idle time", delta)
	}
}

// TestLSTProgressWhenIdle does the same for the local stable time.
func TestLSTProgressWhenIdle(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 3})
	srv := tc.servers[0][1]
	time.Sleep(50 * time.Millisecond)
	lst1, _ := srv.StableTimes()
	time.Sleep(100 * time.Millisecond)
	lst2, _ := srv.StableTimes()
	if lst2 <= lst1 {
		t.Fatalf("LST did not advance while idle: %v -> %v", lst1, lst2)
	}
}

// TestSnapshotFreshnessBound checks the staleness trade-off the paper
// accepts: the local stable snapshot lags real time by roughly ΔR + ΔG
// plus propagation, not unboundedly.
func TestSnapshotFreshnessBound(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2})
	time.Sleep(100 * time.Millisecond)
	srv := tc.servers[0][0]
	lst, _ := srv.StableTimes()
	now := hlc.FromTime(time.Now())
	lagMicros := now.Physical() - lst.Physical()
	// ΔR = ΔG = 1ms in this cluster; allow a generous 100ms bound to stay
	// robust on loaded CI machines.
	if lagMicros < 0 {
		t.Fatalf("LST is in the future by %dµs", -lagMicros)
	}
	if lagMicros > (100 * time.Millisecond).Microseconds() {
		t.Fatalf("local stable snapshot lags by %dµs; staleness unbounded?", lagMicros)
	}
}

// TestVisibilityPredicate unit-tests the CANToR visibility rule of
// Algorithm 3 in isolation.
func TestVisibilityPredicate(t *testing.T) {
	const localDC = 1
	lt, rt := hlc.New(100, 0), hlc.New(80, 0)
	visible := visibleFunc(localDC, lt, rt)

	tests := []struct {
		name string
		src  uint8
		ut   hlc.Timestamp
		rdt  hlc.Timestamp
		want bool
	}{
		{name: "local within snapshot", src: 1, ut: hlc.New(100, 0), rdt: hlc.New(80, 0), want: true},
		{name: "local ut too new", src: 1, ut: hlc.New(101, 0), rdt: hlc.New(10, 0), want: false},
		{name: "local rdt too new", src: 1, ut: hlc.New(50, 0), rdt: hlc.New(81, 0), want: false},
		{name: "remote within snapshot", src: 0, ut: hlc.New(80, 0), rdt: hlc.New(100, 0), want: true},
		{name: "remote ut bounded by rt", src: 0, ut: hlc.New(81, 0), rdt: hlc.New(10, 0), want: false},
		{name: "remote rdt bounded by lt", src: 0, ut: hlc.New(10, 0), rdt: hlc.New(101, 0), want: false},
		{name: "zero version always visible", src: 2, ut: 0, rdt: 0, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := &store.Version{SrcDC: tt.src, UT: tt.ut, RDT: tt.rdt}
			if got := visible(v); got != tt.want {
				t.Errorf("visible(src=%d ut=%v rdt=%v) = %v, want %v",
					tt.src, tt.ut, tt.rdt, got, tt.want)
			}
		})
	}
}

// TestTxIDUniqueAcrossServers verifies the id scheme embeds (DC, partition).
func TestTxIDUniqueAcrossServers(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	ids := make(map[uint64]string)
	for dc := 0; dc < 2; dc++ {
		for p := 0; p < 2; p++ {
			srv := tc.servers[dc][p]
			for i := 0; i < 100; i++ {
				id := srv.newTxID()
				if prev, dup := ids[id]; dup {
					t.Fatalf("txid %d issued by both %s and dc%d/p%d", id, prev, dc, p)
				}
				ids[id] = fmt.Sprintf("dc%d/p%d", dc, p)
			}
		}
	}
}
