package sharding

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPartitionOfDeterministic(t *testing.T) {
	f := func(key string) bool {
		return PartitionOf(key, 8) == PartitionOf(key, 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := PartitionOf(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero partitions")
		}
	}()
	PartitionOf("k", 0)
}

func TestPartitionOfSpread(t *testing.T) {
	// With many keys, every partition should receive a reasonable share.
	const n = 8
	counts := make([]int, n)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[PartitionOf(fmt.Sprintf("key-%d", i), n)]++
	}
	for p, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Errorf("partition %d has %d keys, want around %d", p, c, keys/n)
		}
	}
}

func TestGroupByPartition(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	groups := GroupByPartition(keys, 4)
	total := 0
	for p, g := range groups {
		if p < 0 || p >= 4 {
			t.Errorf("invalid partition %d", p)
		}
		for _, k := range g {
			if PartitionOf(k, 4) != p {
				t.Errorf("key %q grouped into wrong partition %d", k, p)
			}
		}
		total += len(g)
	}
	if total != len(keys) {
		t.Errorf("grouped %d keys, want %d", total, len(keys))
	}
}

func TestGroupByPartitionPreservesOrder(t *testing.T) {
	keys := []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"}
	groups := GroupByPartition(keys, 2)
	for p, g := range groups {
		lastIdx := -1
		for _, k := range g {
			idx := -1
			for i, orig := range keys {
				if orig == k {
					idx = i
					break
				}
			}
			if idx < lastIdx {
				t.Errorf("partition %d: order not preserved: %v", p, g)
			}
			lastIdx = idx
		}
	}
}
