package sharding

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPartitionOfDeterministic(t *testing.T) {
	f := func(key string) bool {
		return PartitionOf(key, 8) == PartitionOf(key, 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := PartitionOf(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero partitions")
		}
	}()
	PartitionOf("k", 0)
}

func TestPartitionOfSpread(t *testing.T) {
	// With many keys, every partition should receive a reasonable share.
	const n = 8
	counts := make([]int, n)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[PartitionOf(fmt.Sprintf("key-%d", i), n)]++
	}
	for p, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Errorf("partition %d has %d keys, want around %d", p, c, keys/n)
		}
	}
}
