// Package sharding maps keys to partitions. The paper's system model
// assigns each key deterministically to one partition by a hash function
// (§II-A); clients, coordinators and the workload generator must all agree
// on this mapping.
package sharding

import "hash/fnv"

// PartitionOf returns the partition responsible for key in a system with
// numPartitions partitions. It panics if numPartitions is not positive,
// because every deployment must have at least one partition.
func PartitionOf(key string, numPartitions int) int {
	if numPartitions <= 0 {
		panic("sharding: numPartitions must be positive")
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numPartitions))
}

// GroupByPartition splits keys into per-partition groups, preserving the
// relative order of keys within each group.
func GroupByPartition(keys []string, numPartitions int) map[int][]string {
	out := make(map[int][]string)
	for _, k := range keys {
		p := PartitionOf(k, numPartitions)
		out[p] = append(out[p], k)
	}
	return out
}
