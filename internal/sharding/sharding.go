// Package sharding maps keys to partitions. The paper's system model
// assigns each key deterministically to one partition by a hash function
// (§II-A); clients, coordinators and the workload generator must all agree
// on this mapping.
package sharding

// PartitionOf returns the partition responsible for key in a system with
// numPartitions partitions. It panics if numPartitions is not positive,
// because every deployment must have at least one partition.
//
// The hash is FNV-1a, computed inline: the hash/fnv package would force a
// []byte conversion and an interface call per key, and PartitionOf runs
// once per key on the coordinator's read fan-out path. The result is
// bit-identical to fnv.New32a over the key's bytes, so existing key
// placements are unchanged.
func PartitionOf(key string, numPartitions int) int {
	if numPartitions <= 0 {
		panic("sharding: numPartitions must be positive")
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(numPartitions))
}
