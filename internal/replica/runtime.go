// Package replica is the protocol-agnostic replica runtime shared by the
// Wren (internal/core) and Cure/H-Cure (internal/cure) partition servers.
//
// The two protocols differ only in their snapshot representation — Wren's
// two stable scalars (LST, RST) against Cure's stability vector — and in
// the read-visibility rule that representation induces. Everything else a
// partition server does is protocol-independent and lives here exactly
// once:
//
//   - the durable transaction lifecycle: prepare/commit logging, the
//     decision-fsynced-before-ack discipline, CommitAck resolution,
//     cooperative 2PC termination probes, and the periodic redrive of
//     unresolved decisions;
//   - restart recovery: replay of committed-but-unapplied transactions,
//     per-peer resend of the unreplicated committed tail, and the pinned
//     replication cursors that make the resend safe;
//   - durable transaction-id block reservation;
//   - the apply (ΔR), gossip (ΔG), GC and lifecycle timer loops, with the
//     resync gating that keeps ordinary replication from overtaking a
//     restart resync;
//   - health-driven read-only admission, including the degraded-mode
//     probation exit that re-verifies and readmits a transiently broken
//     transaction log.
//
// A protocol plugs in through the Protocol interface: how a committed
// transaction's writes render into engine versions and replication
// records, how the apply upper bound follows the clock, and the handlers
// for the snapshot-carrying messages (StartTx, reads, commit entry,
// stability gossip). The seam is deliberately small so a third snapshot
// representation — e.g. the per-(partition, DC) cursors partial
// replication needs — slots in without touching the lifecycle machinery.
package replica

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/store/backend"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/txlog"
	"wren/internal/wire"
)

// Default protocol timer intervals. The paper runs its stabilization
// protocols every 5 milliseconds (§V-A).
const (
	DefaultApplyInterval  = 5 * time.Millisecond
	DefaultGossipInterval = 5 * time.Millisecond
	DefaultGCInterval     = 500 * time.Millisecond
	DefaultTxContextTTL   = 30 * time.Second
	// DefaultMaxInflightPerConn is the per-connection admission cap on
	// outstanding gated client requests (see Config.MaxInflightPerConn).
	// Sized for pooled connections carrying whole session fleets: far
	// above any single session's needs, low enough that one runaway
	// connection cannot exhaust the server's fan-in and 2PC state.
	DefaultMaxInflightPerConn = 1024

	// DefaultRepairInterval paces the degraded-mode probation exit: how
	// often a server whose transaction log is degraded (but whose storage
	// engine is healthy) attempts a repair-and-readmit.
	DefaultRepairInterval = 5 * time.Second
)

// recoveryGrace is how long a prepare recovered from the transaction log
// waits for its re-driven 2PC outcome after a restart before the cohort
// starts probing the coordinator with TxStatusReq (and between re-probes).
// A recovered prepare is only ever aborted on the coordinator's explicit
// "not committed" answer — a timeout alone cannot distinguish a doomed
// prepare from a durably-decided transaction whose coordinator is slow to
// come back. Recovered prepares do NOT hold back the apply upper bound
// while they wait.
const recoveryGrace = 15 * time.Second

// redriveAfter is how old an unresolved commit decision must be before
// the coordinator re-sends its CommitTx to the cohorts that have not
// acknowledged a durable outcome — recovering from a CommitTx or ack lost
// to a cohort crash without waiting for this coordinator to restart.
const redriveAfter = 5 * time.Second

// resendBatchSize bounds how many recovered transactions one resync
// Replicate message carries.
const resendBatchSize = 128

// lifecycleInterval is the period of the transaction-lifecycle maintenance
// loop (status probes for recovered prepares, re-drives of unresolved
// decisions, degraded-mode repair probes). It runs on its own timer, NOT
// the GC loop's: GC is an optional subsystem (GCInterval <= 0 disables it)
// and 2PC termination must not be.
const lifecycleInterval = time.Second

// decisionGenSize bounds the in-memory commit-decision dedupe map: when
// the current generation fills, it becomes the previous generation and a
// fresh one starts, so lookups cover at least the last decisionGenSize
// outcomes. Sized generously — a client termination probe fenced against
// an outcome that already rotated out of BOTH generations would falsely
// abort, so the window must comfortably exceed the commits a coordinator
// can decide within a client's probe horizon.
const decisionGenSize = 1 << 16

// liveResyncStallTicks is how many lifecycle ticks a peer DC's
// unreplicated tail may sit with an unchanged head before the tail is
// re-sent as resync batches (lost acknowledgements or a recovered link).
const liveResyncStallTicks = 3

// seqBlockSize is how many transaction sequence numbers a server reserves
// from its transaction log at a time. Ids must be reserved durably BEFORE
// use — an id handed out at StartTx can reach a cohort's durable log even
// if this server crashes before logging anything itself — and block
// reservation amortizes that to one log record (one fsync under
// fsync=always) per million transactions.
const seqBlockSize = 1 << 20

// Config carries the protocol-independent part of a partition server's
// configuration. The protocol packages keep their own public ServerConfig
// types and convert.
type Config struct {
	// Name tags errors and shutdown diagnostics with the owning protocol
	// package ("core", "cure").
	Name string
	// DC and Partition locate the server in the M×N deployment grid.
	DC        int
	Partition int
	// NumDCs is the number of replication sites M; NumPartitions the
	// number of partitions per DC, N.
	NumDCs        int
	NumPartitions int
	// Network delivers messages between nodes.
	Network transport.Network
	// ClockSource supplies physical time. Nil means the system clock.
	ClockSource hlc.Source
	// ApplyInterval (ΔR), GossipInterval (ΔG), GCInterval and TxContextTTL
	// follow the semantics documented on the protocol ServerConfigs. Zero
	// selects the defaults; a negative GCInterval disables GC.
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	GCInterval     time.Duration
	TxContextTTL   time.Duration
	// RepairInterval paces the degraded-mode probation exit (see
	// Runtime.maybeRepair). Zero selects DefaultRepairInterval; negative
	// disables automatic repair, leaving a degraded server read-only until
	// restart (the pre-probation behaviour some admission tests pin).
	RepairInterval time.Duration
	// StoreShards, StoreBackend, DataDir, FsyncPolicy and DisableTxLog
	// configure the storage engine and the transaction log, as documented
	// on the protocol ServerConfigs.
	StoreShards  int
	StoreBackend string
	DataDir      string
	FsyncPolicy  string
	DisableTxLog bool
	// MaxInflightPerConn caps the admission-gated client requests
	// (transactional reads and write commits) outstanding per client
	// connection. Beyond the cap the request is shed with a BusyResp —
	// typed backpressure the client retry policies absorb with a delayed
	// resend — instead of queueing unbounded fan-in and 2PC state for one
	// connection. Zero selects DefaultMaxInflightPerConn; negative
	// disables the gate.
	MaxInflightPerConn int
	// DisableDecisionBatch turns off the txlog's batched group commit of
	// coordinator decision records under fsync=always, falling back to
	// one append+sync per decision. Exists for the before/after rows of
	// the wren-bench -txlog sweep.
	DisableDecisionBatch bool
}

// FillDefaults resolves zero values to the package defaults.
func (c *Config) FillDefaults() {
	if c.ClockSource == nil {
		c.ClockSource = hlc.SystemSource{}
	}
	if c.ApplyInterval == 0 {
		c.ApplyInterval = DefaultApplyInterval
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.TxContextTTL == 0 {
		c.TxContextTTL = DefaultTxContextTTL
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = DefaultRepairInterval
	}
	if c.MaxInflightPerConn == 0 {
		c.MaxInflightPerConn = DefaultMaxInflightPerConn
	}
}

// Validate checks the topology and storage configuration, prefixing
// errors with the protocol package name.
func (c *Config) Validate() error {
	if c.NumDCs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("%s: invalid topology %dx%d", c.Name, c.NumDCs, c.NumPartitions)
	}
	if c.DC < 0 || c.DC >= c.NumDCs {
		return fmt.Errorf("%s: DC %d out of range [0,%d)", c.Name, c.DC, c.NumDCs)
	}
	if c.Partition < 0 || c.Partition >= c.NumPartitions {
		return fmt.Errorf("%s: partition %d out of range [0,%d)", c.Name, c.Partition, c.NumPartitions)
	}
	if c.Network == nil {
		return fmt.Errorf("%s: network is required", c.Name)
	}
	if c.StoreShards < 0 || c.StoreShards > store.MaxShards {
		return fmt.Errorf("%s: store shards %d out of range [0,%d]", c.Name, c.StoreShards, store.MaxShards)
	}
	if err := backend.Validate(c.StoreBackend, c.DataDir, c.FsyncPolicy); err != nil {
		return fmt.Errorf("%s: %w", c.Name, err)
	}
	return nil
}

// EngineDir is the per-server subdirectory of DataDir a durable backend
// writes to, so all servers of a deployment can share one root.
func (c *Config) EngineDir() string {
	if c.DataDir == "" {
		return ""
	}
	return filepath.Join(c.DataDir, fmt.Sprintf("dc%d-p%d", c.DC, c.Partition))
}

// SkipFunc is the per-key idempotence check the runtime passes to the
// Protocol's put renderers during recovery replay and resync application:
// it reports whether the engine already holds key's version from txID, in
// which case the write must not be re-inserted. Per KEY, not per
// transaction — a kill can land mid-PutBatch, leaving some of a
// transaction's shard logs appended and others not, and a
// whole-transaction skip would lose the missing keys.
type SkipFunc func(key string, txID uint64) bool

// Protocol is the seam between the shared runtime and a snapshot
// representation. Implementations are the per-protocol servers; every
// method is called by at most the documented goroutines.
type Protocol interface {
	// AppendLocalPuts renders a locally committed transaction into engine
	// inserts appended to dst (returned like append). skip, when non-nil,
	// is the recovery/resync idempotence check.
	AppendLocalPuts(dst []store.KV, t *txlog.CommittedTx, skip SkipFunc) []store.KV
	// AppendRemotePuts renders one replicated transaction from srcDC.
	AppendRemotePuts(dst []store.KV, srcDC uint8, t *wire.ReplTx, skip SkipFunc) []store.KV
	// ReplTxRecord renders a committed transaction's replication record
	// (Wren ships the scalar RST; Cure a dependency vector).
	ReplTxRecord(t *txlog.CommittedTx) wire.ReplTx
	// ApplyBound returns the apply upper bound when no prepare is pending,
	// pinning the clock so later prepares propose strictly above it.
	// Called with the runtime's writer mutex held.
	ApplyBound() hlc.Timestamp
	// ObserveCommitTS lets the protocol's clock absorb a commit timestamp
	// carried by an incoming CommitTx (Wren always; H-Cure only).
	ObserveCommitTS(ct hlc.Timestamp)
	// AfterInstall runs after the runtime advanced the version vector
	// (apply tick, replication, heartbeat): Cure releases parked readers
	// whose snapshot is now installed; Wren has nothing to do.
	AfterInstall()
	// GossipTick emits one round of the protocol's stabilization exchange.
	GossipTick()
	// OldestActiveSnapshot returns the oldest snapshot any live transaction
	// context still needs (expiring abandoned contexts as a side effect) —
	// the protocol half of the GC tick.
	OldestActiveSnapshot(now time.Time) hlc.Timestamp
	// BeforeCommitReply runs between the CommitTx fanout and the client
	// acknowledgement; returning false abandons the reply (stopping).
	// Wren's BlockingCommit ablation waits for ct to become stable here.
	BeforeCommitReply(ct hlc.Timestamp) bool
	// OnStop runs inside the shutdown sequence before the stop channel
	// closes: Cure flushes parked readers (with courtesy replies unless
	// kill) so clients are not left hanging.
	OnStop(kill bool)
	// HandleMessage handles the snapshot-carrying messages the runtime
	// does not: StartTxReq, TxReadReq, CommitReq, SliceReq, PrepareReq,
	// StableBroadcast.
	HandleMessage(from transport.NodeID, m wire.Message)
}

// Counters are the runtime-maintained metrics, pointing into the owning
// server's Metrics struct so the public Metrics() API is unchanged.
type Counters struct {
	TxCommitted   *stats.Counter
	ReplTxApplied *stats.Counter
	GCRemoved     *stats.Counter
	GCKeysDropped *stats.Counter
}

// recoveredPrepare is a prepare replayed from the transaction log after a
// restart: its 2PC outcome is unknown until a coordinator re-drives it or
// a TxStatusResp settles it. It is kept out of the pending list so it
// cannot hold the apply upper bound — and therefore the stable snapshot —
// back while it waits; nextProbe paces the status queries.
type recoveredPrepare struct {
	tx        *txlog.PreparedTx
	nextProbe time.Time
}

// prepareVote is one cohort's answer in the 2PC: a proposed commit
// timestamp, or a refusal (non-empty err) from a cohort whose durability
// is degraded.
type prepareVote struct {
	pt  hlc.Timestamp
	err string
}

// prepareCall collects PrepareResp messages for one committing transaction.
// seen (guarded by Runtime.mu) deduplicates votes by request id: a
// duplicated or resent PrepareResp must not count twice, or the collection
// would finish before every real cohort answered.
type prepareCall struct {
	ch   chan prepareVote
	seen map[uint64]struct{}
}

// Runtime is the shared replica core under one partition server. The
// protocol server owns the public API and the read path; the runtime owns
// the writer state, the durable lifecycle and every background loop.
//
// The state is split so the protocol's read path never acquires the
// runtime's writer mutex: the version vector is an entrywise-monotone
// atomic, per-request bookkeeping lives in striped maps, and mu guards
// only writer state (the pending/commit lists and GC aggregation).
type Runtime struct {
	cfg   Config
	proto Protocol
	ctr   Counters
	id    transport.NodeID

	// Clock is the server's hybrid logical clock. It is exported for the
	// protocol's snapshot assignment; mutating calls that must be atomic
	// with the pending list (TickPast) happen inside Runtime.Prepare.
	Clock *hlc.Clock

	st store.Engine
	// tl is the durable transaction-lifecycle log (nil for the memory
	// backend or when disabled): commit records ahead of acknowledgements,
	// the per-DC replication cursor, and restart recovery state.
	tl *txlog.Log

	// resendTails[dc] is the unreplicated committed tail snapshotted at
	// construction time — BEFORE any new commit or acknowledgement can
	// race the snapshot — for resendTailTo to replay; the txlog's cursor
	// stays pinned below each tail until its resync is confirmed.
	resendTails [][]*txlog.CommittedTx
	// resyncTailSent[dc] flips once resendTailTo has enqueued dc's tail;
	// resyncDone[dc] (touched only under applyMu) gates ordinary
	// replication to dc: until the tail is on the FIFO link, no new batch
	// or heartbeat may overtake it — the peer's version vector would
	// advance past transactions it has not received, a transient causal
	// hole. The transition tick ships a dedupe-safe catch-up of everything
	// still unconfirmed, then normal replication resumes.
	resyncTailSent []atomic.Bool
	resyncDone     []bool

	// seqLimit is the durably reserved transaction-sequence ceiling;
	// seqMu serializes block refills (see seqBlockSize).
	seqLimit atomic.Uint64
	seqMu    sync.Mutex

	// VV is the version vector: VV[m] is the locally installed snapshot,
	// VV[i] the latest commit timestamp received from DC i. Entrywise
	// monotone, so protocols load it lock-free on the read path.
	VV hlc.AtomicVector

	// SnapMu makes the protocol's snapshot assignment atomic with respect
	// to GC's oldest-snapshot computation. StartTx handlers hold it SHARED
	// around (load stable snapshot → store context) — concurrent starts
	// never serialize on it — while the GC tick takes it exclusively for
	// one load inside Protocol.OldestActiveSnapshot: the barrier
	// guarantees every context predating the GC floor is visible to the
	// sweep, so GC can never prune a version a just-started transaction's
	// snapshot still needs.
	SnapMu sync.RWMutex

	// pendingSlice tracks in-flight slice-read fan-ins by request id.
	pendingSlice *stripemap.Map[*fanin.TxRead]

	// admission counts in-flight admission-gated client requests per
	// connection (MaxInflightPerConn). admMu only guards the map shape;
	// the counters are atomic, so the steady state per request is one
	// read-locked lookup plus one atomic add.
	admMu     sync.RWMutex
	admission map[transport.NodeID]*atomic.Int64
	shedCount atomic.Uint64

	// applyMu serializes ApplyTick end to end. Cure runs the tick from
	// every parked slice read besides the apply loop, and two overlapping
	// ticks break the installed-snapshot invariant: tick A takes committed
	// transactions up to its bound and is preempted before writing them to
	// the engine; tick B, finding the commit list empty, computes a LARGER
	// bound and publishes it while A's writes are still in flight —
	// readers whose snapshot the new bound "covers" are served without
	// those versions. mu cannot serve this purpose: the tick must release
	// it around the engine write, which is exactly the window that must
	// stay ordered.
	applyMu sync.Mutex

	mu             sync.Mutex
	prepared       map[uint64]*txlog.PreparedTx
	recovered      map[uint64]*recoveredPrepare // txlog prepares awaiting a re-driven outcome
	committed      []*txlog.CommittedTx
	peerOldest     []hlc.Timestamp // per-partition gossiped oldest active snapshots
	pendingPrepare map[uint64]*prepareCall

	// decisions / decisionsPrev (guarded by mu) record the recent outcomes
	// of this coordinator's write commits by transaction id: the commit
	// timestamp, or zero for aborted-or-fenced. They make the commit path
	// idempotent against duplicated or resent CommitReqs — a duplicate of
	// a decided transaction is answered with the same outcome instead of
	// re-running the 2PC at a new timestamp — and back the client-facing
	// termination probe on backends without a transaction log. Bounded by
	// generational rotation; see recordDecisionLocked.
	decisions     map[uint64]hlc.Timestamp
	decisionsPrev map[uint64]hlc.Timestamp

	// replWM[dc] is the highest replicated commit timestamp applied from
	// that DC's sender: batches at or below it were already installed, so
	// a duplicated frame (chaos duplication, a TCP resend across a
	// reconnect) deduplicates instead of double-applying.
	replWM hlc.AtomicVector

	// replPrev[dc] is the commit timestamp of the last transaction this
	// server shipped to that DC (ordinary or resync); it stamps each
	// ordinary Replicate batch's Prev so the receiver can detect a lost
	// predecessor and refuse to apply past the gap.
	replPrev hlc.AtomicVector

	// tailHead/tailStall track, per peer DC, how long the unreplicated
	// committed tail has sat with the same head (its acks lost or the peer
	// temporarily unreachable); after liveResyncStallTicks lifecycle ticks
	// the tail is re-sent as dedupe-safe resync batches. Touched only by
	// the lifecycle loop.
	tailHead  []hlc.Timestamp
	tailStall []int

	reqSeq atomic.Uint64
	txSeq  atomic.Uint64

	// nextRepair paces maybeRepair; touched only by the lifecycle loop.
	nextRepair time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	reqWG     sync.WaitGroup

	// drainMu orders GoAsync's draining check + reqWG.Add against Stop's
	// draining=true + reqWG.Wait: without it, an Add could race Wait at
	// counter zero (a documented WaitGroup misuse that panics). Only the
	// commit path touches it; reads never use GoAsync at all.
	drainMu  sync.Mutex
	draining bool // guarded by drainMu; set during Stop
}

// New opens the storage engine and transaction log, replays recovery
// state through the protocol's put renderer, and returns a runtime ready
// for Start. cfg must already be filled and validated (the protocol
// constructor does both so its own config errors keep their package
// prefix). proto may rely only on its configuration during New — the
// runtime pointer is handed to it by its own constructor afterwards.
func New(cfg Config, proto Protocol, ctr Counters) (*Runtime, error) {
	eng, err := backend.Open(backend.Options{
		Backend: cfg.StoreBackend,
		Shards:  cfg.StoreShards,
		DataDir: cfg.EngineDir(),
		Fsync:   cfg.FsyncPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: open store: %w", cfg.Name, err)
	}
	// The transaction log lives beside the engine's files, inside the
	// directory the engine just claimed — covered by the same exclusive
	// lock and engine-type marker. Memory backends have nowhere durable to
	// recover from, so they run without one.
	var tl *txlog.Log
	if cfg.StoreBackend != "" && cfg.StoreBackend != backend.Memory && !cfg.DisableTxLog {
		tl, err = txlog.Open(txlog.Options{
			Dir:                  filepath.Join(cfg.EngineDir(), "txlog"),
			NumDCs:               cfg.NumDCs,
			SelfDC:               cfg.DC,
			Fsync:                cfg.FsyncPolicy,
			DisableDecisionBatch: cfg.DisableDecisionBatch,
		})
		if err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("%s: open txlog: %w", cfg.Name, err)
		}
	}
	r := &Runtime{
		cfg:            cfg,
		proto:          proto,
		ctr:            ctr,
		id:             transport.ServerID(cfg.DC, cfg.Partition),
		Clock:          hlc.NewClock(cfg.ClockSource),
		st:             eng,
		tl:             tl,
		VV:             hlc.NewAtomicVector(cfg.NumDCs),
		prepared:       make(map[uint64]*txlog.PreparedTx),
		recovered:      make(map[uint64]*recoveredPrepare),
		peerOldest:     make([]hlc.Timestamp, cfg.NumPartitions),
		pendingSlice:   stripemap.New[*fanin.TxRead](0),
		admission:      make(map[transport.NodeID]*atomic.Int64),
		pendingPrepare: make(map[uint64]*prepareCall),
		decisions:      make(map[uint64]hlc.Timestamp),
		replWM:         hlc.NewAtomicVector(cfg.NumDCs),
		replPrev:       hlc.NewAtomicVector(cfg.NumDCs),
		tailHead:       make([]hlc.Timestamp, cfg.NumDCs),
		tailStall:      make([]int, cfg.NumDCs),
		stop:           make(chan struct{}),
	}
	if tl != nil {
		// Recovery order: the engine replayed its own logs in Open above;
		// now the txlog's committed-but-unapplied transactions go into the
		// engine BEFORE the server serves anything, so a kill between the
		// client ack and the apply tick loses nothing.
		r.recoverFromTxLog()
		// Fresh transaction ids must clear every id of the previous
		// lives: the log keeps old ids live across restarts (resync
		// dedupe, re-driven outcomes, remote cohorts' retained prepares),
		// so a colliding new id would match an unrelated old transaction.
		// Seed above the durably reserved watermark and reserve the first
		// block.
		floor := tl.NextSeqFloor()
		r.txSeq.Store(floor)
		tl.ReserveSeqs(floor + seqBlockSize)
		r.seqLimit.Store(floor + seqBlockSize)
		// Snapshot each peer DC's unreplicated tail NOW, before the
		// server serves anything: once live traffic flows, a peer's
		// acknowledgement of a NEW batch could advance its cursor past
		// the old tail before resendTailTo reads it, silently dropping
		// the very transactions the cursor exists to recover. The cursor
		// stays pinned at each tail's high-water mark until the re-sent
		// tail itself is acknowledged.
		r.resendTails = make([][]*txlog.CommittedTx, cfg.NumDCs)
		r.resyncTailSent = make([]atomic.Bool, cfg.NumDCs)
		r.resyncDone = make([]bool, cfg.NumDCs)
		for dc := 0; dc < cfg.NumDCs; dc++ {
			r.resyncDone[dc] = true
			if dc == cfg.DC {
				continue
			}
			if tail := tl.UnreplicatedTail(dc); len(tail) > 0 {
				r.resendTails[dc] = tail
				r.resyncDone[dc] = false
				tl.PinResync(dc, tail[len(tail)-1].CT)
			}
		}
	}
	return r, nil
}

// ID returns the server's node id.
func (r *Runtime) ID() transport.NodeID { return r.id }

// Engine exposes the storage engine.
func (r *Runtime) Engine() store.Engine { return r.st }

// TxLog exposes the transaction log (nil when disabled).
func (r *Runtime) TxLog() *txlog.Log { return r.tl }

// Healthy reports the first durability failure of the server's write path
// — storage engine or transaction log — or nil while both are intact. The
// runtime ACTS on this signal: a degraded server sheds into read-only
// admission (prepares and commits are refused with a typed error) until
// restart or a successful probation repair.
func (r *Runtime) Healthy() error {
	if err := r.st.Healthy(); err != nil {
		return err
	}
	if r.tl != nil {
		if err := r.tl.Healthy(); err != nil {
			return err
		}
	}
	return nil
}

// Stopping exposes the stop channel for protocol hooks that wait
// (BeforeCommitReply).
func (r *Runtime) Stopping() <-chan struct{} { return r.stop }

// NextReqID allocates a request id for an outgoing fan-out request.
func (r *Runtime) NextReqID() uint64 { return r.reqSeq.Add(1) }

// TrackRead registers an in-flight slice-read fan-in under reqID; the
// matching SliceResp resolves it, the GC tick sweeps it if abandoned.
func (r *Runtime) TrackRead(reqID uint64, fi *fanin.TxRead) {
	r.pendingSlice.Store(reqID, fi)
}

// CommitQueueLen reports the current commit-list length (tests only).
func (r *Runtime) CommitQueueLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.committed)
}

// Send transmits a message, ignoring delivery errors: the network rejects
// sends only during shutdown, when responses are moot.
func (r *Runtime) Send(to transport.NodeID, m wire.Message) {
	_ = r.cfg.Network.Send(r.id, to, m)
}

// SendBounded transmits protocol maintenance traffic — replication
// batches, stabilization gossip, resync tails — absorbing transient
// delivery errors (a TCP peer shedding load, a link mid-redial) with a
// few short-backoff retries instead of silently dropping. Unlike
// sendRetry it gives up quickly: every caller's traffic is re-generated
// by a periodic loop, so the backstop is the next tick, not an unbounded
// retry. Runs only on protocol loop goroutines, which may stall briefly;
// never on a delivery handler. Reports whether the send was accepted.
func (r *Runtime) SendBounded(to transport.NodeID, m wire.Message) bool {
	const attempts = 4
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-r.stop:
				return false
			case <-time.After(time.Duration(i) * 2 * time.Millisecond):
			}
		}
		err := r.cfg.Network.Send(r.id, to, m)
		if err == nil {
			return true
		}
		if errors.Is(err, transport.ErrClosed) {
			return false
		}
	}
	return false
}

// recordDecisionLocked remembers a commit outcome (ct, or zero for
// aborted/fenced) for duplicate-CommitReq dedupe and client termination
// probes. Generational rotation bounds the memory: when the current map
// fills it becomes the previous generation, so at least the last
// decisionGenSize outcomes stay resolvable. Caller holds r.mu.
func (r *Runtime) recordDecisionLocked(txID uint64, ct hlc.Timestamp) {
	if len(r.decisions) >= decisionGenSize {
		r.decisionsPrev = r.decisions
		r.decisions = make(map[uint64]hlc.Timestamp, decisionGenSize)
	}
	r.decisions[txID] = ct
}

// lookupDecisionLocked resolves a recorded outcome. Caller holds r.mu.
func (r *Runtime) lookupDecisionLocked(txID uint64) (hlc.Timestamp, bool) {
	if ct, ok := r.decisions[txID]; ok {
		return ct, true
	}
	ct, ok := r.decisionsPrev[txID]
	return ct, ok
}

// TxApplied reports whether the storage engine already holds a version
// written by txID under key — the idempotence check recovery replay and
// resync application run before re-inserting a transaction's writes.
// Transaction ids embed the DC and partition, so a TxID match is exact.
func (r *Runtime) TxApplied(key string, txID uint64) bool {
	return r.st.ReadVisible(key, func(v *store.Version) bool { return v.TxID == txID }) != nil
}

// NewTxID generates a globally unique transaction id: DC in the top byte,
// partition in the next two, then a local sequence number. With a
// transaction log, sequence numbers are drawn from durably reserved
// blocks so ids stay unique across restarts too (an id can outlive this
// process in a cohort's log the moment it is handed out).
func (r *Runtime) NewTxID() uint64 {
	seq := r.txSeq.Add(1)
	if r.tl != nil && seq > r.seqLimit.Load() {
		r.seqMu.Lock()
		if seq > r.seqLimit.Load() {
			r.tl.ReserveSeqs(seq + seqBlockSize)
			r.seqLimit.Store(seq + seqBlockSize)
		}
		r.seqMu.Unlock()
	}
	return uint64(r.cfg.DC)<<56 | uint64(r.cfg.Partition)<<40 | seq
}

// CoordinatorOf decodes the coordinator server embedded in a transaction
// id (see NewTxID: DC in the top byte, partition in the next two).
func CoordinatorOf(txID uint64) (dc, partition int) {
	return int(txID >> 56), int(uint16(txID >> 40))
}

// recoverFromTxLog replays the log's committed transactions into the
// storage engine (skipping the writes the engine already recovered
// itself) and stages outcome-less prepares for the re-driven CommitTx a
// restarted coordinator sends. Runs before the server is registered on
// the network.
func (r *Runtime) recoverFromTxLog() {
	committed := r.tl.Committed()
	applied := make([]uint64, 0, len(committed))
	for _, t := range committed {
		applied = append(applied, t.TxID)
		r.st.PutBatch(r.proto.AppendLocalPuts(nil, t, r.TxApplied))
	}
	// Everything committed in the log is now in the engine.
	r.tl.MarkApplied(applied)
	probe := time.Now().Add(recoveryGrace)
	for _, p := range r.tl.Prepared() {
		r.recovered[p.TxID] = &recoveredPrepare{tx: p, nextProbe: probe}
	}
}

// redriveRecovered is the restart half of the coordinator's lifecycle:
// re-drive the unresolved commit decisions this coordinator acknowledged
// (their cohorts may have crashed between PrepareResp and CommitTx),
// retrying while destinations are still coming up. Anything it cannot
// finish is picked up by the periodic lifecycle loop.
func (r *Runtime) redriveRecovered() {
	defer r.wg.Done()
	for _, c := range r.tl.CoordPending() {
		for _, p := range c.Cohorts {
			if !r.sendRetry(transport.ServerID(r.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT}) {
				return
			}
		}
	}
}

// resendTailTo re-sends one peer DC the committed tail above its
// replication cursor, snapshotted at construction time, as resync batches
// the receiver deduplicates. Each peer gets its own goroutine — until the
// tail is on the link, ApplyTick withholds all ordinary replication to
// that DC, and one unreachable peer must not extend that hold to the
// others.
func (r *Runtime) resendTailTo(dc int, tail []*txlog.CommittedTx) {
	defer r.wg.Done()
	for i := 0; i < len(tail); i += resendBatchSize {
		batch := &wire.Replicate{SrcDC: uint8(r.cfg.DC), Partition: uint16(r.cfg.Partition), Resync: true}
		for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
			batch.Txs = append(batch.Txs, r.proto.ReplTxRecord(t))
		}
		if !r.sendRetry(transport.ServerID(dc, r.cfg.Partition), batch) {
			return
		}
		r.replPrev.Advance(dc, batch.Txs[len(batch.Txs)-1].CT)
	}
	r.resyncTailSent[dc].Store(true)
}

// sendRetry delivers a recovery message, retrying while the destination is
// unreachable: servers of a restarting deployment come up in arbitrary
// order, and a re-driven outcome or resync batch dropped on the floor
// would silently undo the durability the log just recovered. Gives up only
// when this server stops; reports whether the send succeeded.
func (r *Runtime) sendRetry(to transport.NodeID, m wire.Message) bool {
	for {
		if err := r.cfg.Network.Send(r.id, to, m); err == nil {
			return true
		}
		select {
		case <-r.stop:
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Start registers the runtime as the server's transport handler and
// launches the apply (ΔR), stabilization (ΔG), garbage-collection and
// lifecycle loops.
func (r *Runtime) Start() {
	r.startOnce.Do(func() {
		r.cfg.Network.Register(r.id, r)
		r.wg.Add(1)
		go r.applyLoop()
		r.wg.Add(1)
		go r.gossipLoop()
		if r.cfg.GCInterval > 0 {
			r.wg.Add(1)
			go r.gcLoop()
		}
		if r.tl != nil {
			// Recovery sends run per destination: a re-drive retrying
			// toward one dead cohort, or one unreachable peer DC, must
			// not block the resync tails — and with them ALL replication
			// — to everyone else.
			r.wg.Add(1)
			go r.redriveRecovered()
			for dc, tail := range r.resendTails {
				if len(tail) > 0 {
					r.wg.Add(1)
					go r.resendTailTo(dc, tail)
				}
			}
			r.wg.Add(1)
			go r.lifecycleLoop()
		}
	})
}

// Stop terminates the background loops, waits for them to exit, flushes
// any transactions still on the commit list into the store, and closes
// the storage engine and the transaction log. With the transaction log
// enabled the flush is an optimization, not the durability mechanism: an
// acknowledged commit whose CommitTx was in flight when draining began is
// already logged and is recovered on the next start.
func (r *Runtime) Stop() { r.shutdown(false) }

// Kill stops the server WITHOUT the final apply/flush, simulating a hard
// kill for recovery tests: acknowledged-but-unapplied transactions stay
// out of the engine and must come back through transaction-log recovery.
// (In-process, file writes already handed to the OS survive regardless —
// what Kill withholds is every shutdown courtesy the process performs.)
func (r *Runtime) Kill() { r.shutdown(true) }

func (r *Runtime) shutdown(kill bool) {
	var flush bool
	r.stopOnce.Do(func() {
		r.drainMu.Lock()
		r.draining = true
		r.drainMu.Unlock()
		r.proto.OnStop(kill)
		close(r.stop)
		flush = true
	})
	r.wg.Wait()
	r.reqWG.Wait()
	if !flush {
		return
	}
	if !kill {
		// Prepared-but-uncommitted transactions can never commit now, but
		// their proposed timestamps would hold the apply upper bound below
		// later acknowledged commits; drop them so the final apply flushes
		// every transaction on the commit list. (With the txlog their
		// prepares stay logged, so a commit decision that surfaces after a
		// restart can still be honored.)
		r.mu.Lock()
		r.prepared = make(map[uint64]*txlog.PreparedTx)
		r.mu.Unlock()
		r.ApplyTick(false)
		r.flushCommitted()
	}
	if err := r.st.Close(); err != nil {
		// The engine surfaces its first append/sync failure here; it
		// must not vanish silently — acknowledged commits may not have
		// reached disk.
		fmt.Fprintf(os.Stderr, "%s: dc%d/p%d store close: %v\n", r.cfg.Name, r.cfg.DC, r.cfg.Partition, err)
	}
	if r.tl != nil {
		if err := r.tl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: dc%d/p%d txlog close: %v\n", r.cfg.Name, r.cfg.DC, r.cfg.Partition, err)
		}
	}
}

// flushCommitted force-applies every transaction still on the commit list
// to the storage engine, ignoring the apply upper bound. Only used during
// Stop: the server serves no more reads, and a durable engine must not
// close with acknowledged commits unapplied. The regular final ApplyTick
// usually drains the list already; this catches commit timestamps the
// local clock has not caught up to (for plain Cure in particular, whose
// bound follows the raw physical clock: under skew a timestamp assigned
// by a faster coordinator can sit above PhysicalNow() at shutdown).
//
// Replication is NOT retried here: a transaction flushed this way (or
// whose Replicate message was dropped by draining peers) persists locally
// but never reaches remote DCs — there is no replication cursor yet, so a
// restart can leave DCs durably diverged on the final pre-shutdown
// transactions (tracked in ROADMAP.md alongside commit-time durability).
func (r *Runtime) flushCommitted() {
	r.mu.Lock()
	apply := r.committed
	r.committed = nil
	r.mu.Unlock()
	if len(apply) == 0 {
		return
	}
	sortCommitted(apply)
	var puts []store.KV
	for _, t := range apply {
		puts = r.proto.AppendLocalPuts(puts, t, nil)
	}
	r.st.PutBatch(puts)
	if r.tl != nil {
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.TxID
		}
		r.tl.MarkApplied(ids)
	}
}

// GoAsync runs fn on a tracked goroutine unless the server is draining.
// The commit path uses it for the 2PC response collection and post-append
// fsyncs, which must not block a delivery link. (Reads do not need it:
// their fan-in is a completion counter, not a parked goroutine.)
func (r *Runtime) GoAsync(fn func()) {
	r.drainMu.Lock()
	if r.draining {
		r.drainMu.Unlock()
		return
	}
	r.reqWG.Add(1)
	r.drainMu.Unlock()
	go func() {
		defer r.reqWG.Done()
		fn()
	}()
}

// sortCommitted orders transactions by (commit timestamp, id) — the apply
// and flush order.
func sortCommitted(txs []*txlog.CommittedTx) {
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].CT != txs[j].CT {
			return txs[i].CT < txs[j].CT
		}
		return txs[i].TxID < txs[j].TxID
	})
}

// HandleMessage implements transport.Handler: the runtime dispatches the
// protocol-independent messages itself and forwards the snapshot-carrying
// rest to the protocol. Handlers never block (Wren's defining property),
// so the per-link FIFO delivery goroutines are never stalled.
func (r *Runtime) HandleMessage(from transport.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.SliceResp:
		r.handleSliceResp(msg)
	case *wire.PrepareResp:
		r.handlePrepareResp(msg)
	case *wire.CommitTx:
		r.HandleCommitTx(from, msg)
	case *wire.CommitAck:
		r.handleCommitAck(msg)
	case *wire.Replicate:
		r.handleReplicate(msg)
	case *wire.ReplicateAck:
		r.handleReplicateAck(msg)
	case *wire.Heartbeat:
		r.handleHeartbeat(msg)
	case *wire.GCBroadcast:
		r.handleGCBroadcast(msg)
	case *wire.HealthReq:
		r.handleHealthReq(from, msg)
	case *wire.TxStatusReq:
		r.handleTxStatusReq(from, msg)
	case *wire.TxStatusResp:
		r.handleTxStatusResp(from, msg)
	default:
		r.proto.HandleMessage(from, m)
	}
}

// AdmitClient reserves an in-flight slot for one admission-gated client
// request (a transactional read or a write commit) from connection
// `from`. It returns false — the caller must then answer with Shed — when
// the connection already has MaxInflightPerConn requests outstanding. The
// gate is per connection: a pooled endpoint carrying a whole session
// fleet gets one budget, so it cannot queue unbounded fan-in and 2PC
// state while other connections starve.
func (r *Runtime) AdmitClient(from transport.NodeID) bool {
	limit := r.cfg.MaxInflightPerConn
	if limit <= 0 {
		return true
	}
	ctr := r.admissionCounter(from)
	if ctr.Add(1) > int64(limit) {
		ctr.Add(-1)
		return false
	}
	return true
}

// ReleaseClient returns an admitted request's slot. Called exactly once
// per successful AdmitClient: when the response is sent, or when a stale
// fan-in is swept.
func (r *Runtime) ReleaseClient(from transport.NodeID) {
	if r.cfg.MaxInflightPerConn <= 0 {
		return
	}
	r.admissionCounter(from).Add(-1)
}

// Shed answers a request refused by AdmitClient with the typed admission
// pushback. A BusyResp proves the request did not execute, so the client
// may resend it — even a CommitReq — after a backoff.
func (r *Runtime) Shed(from transport.NodeID, reqID uint64) {
	r.shedCount.Add(1)
	r.Send(from, &wire.BusyResp{ReqID: reqID})
}

// ShedCount returns how many client requests admission control refused.
func (r *Runtime) ShedCount() uint64 { return r.shedCount.Load() }

func (r *Runtime) admissionCounter(from transport.NodeID) *atomic.Int64 {
	r.admMu.RLock()
	ctr := r.admission[from]
	r.admMu.RUnlock()
	if ctr != nil {
		return ctr
	}
	r.admMu.Lock()
	if ctr = r.admission[from]; ctr == nil {
		ctr = new(atomic.Int64)
		r.admission[from] = ctr
	}
	r.admMu.Unlock()
	return ctr
}

// handleSliceResp folds a remote slice into its read fan-in; the last
// arriving slice assembles and sends the TxReadResp, releasing the read's
// admission slot.
func (r *Runtime) handleSliceResp(m *wire.SliceResp) {
	if fi, ok := r.pendingSlice.LoadAndDelete(m.ReqID); ok {
		if fi.Fold(m.Items, m.BlockedMicros) {
			// The fold stole the items buffer into the response as a
			// chunk: strip it from the pooled message so the pool cannot
			// hand the same backing array to a later read.
			m.Items = nil
		}
		if resp, to, last := fi.Finish(); last {
			r.ReleaseClient(to)
			r.Send(to, resp)
		}
	}
	wire.PutSliceResp(m)
}

// Commit runs the coordinator side of the two-phase commit (Algorithm 2
// lines 17–28). The protocol has already resolved the transaction's
// snapshot and supplies makePrepare, which renders a cohort's PrepareReq
// carrying that snapshot; the runtime fills ReqID, TxID and Writes.
func (r *Runtime) Commit(from transport.NodeID, m *wire.CommitReq, makePrepare func() *wire.PrepareReq) {
	if len(m.Writes) == 0 {
		// Read-only transactions just release their context (the paper's
		// COMMIT is only invoked when WS ≠ ∅). They are admitted even in
		// read-only degraded mode — nothing about them needs durability.
		r.Send(from, &wire.CommitResp{ReqID: m.ReqID, CT: 0})
		return
	}
	if err := r.Healthy(); err != nil {
		// Read-only admission: the durability this acknowledgement would
		// promise cannot be delivered, so the write is refused with a
		// typed error instead of being accepted into a degraded log.
		r.Send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: err.Error()})
		return
	}

	type cohortWrites struct {
		partition int
		writes    []wire.KV
	}
	byPartition := make(map[int][]wire.KV)
	for _, kv := range m.Writes {
		p := sharding.PartitionOf(kv.Key, r.cfg.NumPartitions)
		byPartition[p] = append(byPartition[p], kv)
	}
	cohorts := make([]cohortWrites, 0, len(byPartition))
	for p, ws := range byPartition {
		cohorts = append(cohorts, cohortWrites{partition: p, writes: ws})
	}

	call := &prepareCall{
		ch:   make(chan prepareVote, len(cohorts)),
		seen: make(map[uint64]struct{}, len(cohorts)),
	}
	r.mu.Lock()
	if ct, decided := r.lookupDecisionLocked(m.TxID); decided {
		// A duplicated or resent CommitReq for a transaction this
		// coordinator already decided: answer with the same outcome.
		// Re-running the 2PC would commit the write set a second time at a
		// new timestamp — or, after a "not committed" probe verdict fenced
		// the id, commit a transaction the client was told had failed.
		r.mu.Unlock()
		if ct > 0 {
			r.Send(from, &wire.CommitResp{ReqID: m.ReqID, CT: ct})
		} else {
			r.Send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrAborted,
				Err: "transaction aborted (fenced by termination probe)"})
		}
		return
	}
	if _, inFlight := r.pendingPrepare[m.TxID]; inFlight {
		// Duplicate of an in-flight commit: the original's collection will
		// answer the client; a second collection would double-prepare.
		r.mu.Unlock()
		return
	}
	if !r.AdmitClient(from) {
		// Per-connection admission: shed BEFORE any 2PC state exists.
		// Dedupe ran first so duplicates of decided transactions are
		// still answered cheaply rather than bounced.
		r.mu.Unlock()
		r.Shed(from, m.ReqID)
		return
	}
	r.pendingPrepare[m.TxID] = call
	r.mu.Unlock()

	for _, c := range cohorts {
		req := makePrepare()
		req.ReqID = r.reqSeq.Add(1)
		req.TxID = m.TxID
		req.Writes = c.writes
		r.Send(transport.ServerID(r.cfg.DC, c.partition), req)
	}

	r.GoAsync(func() {
		defer r.ReleaseClient(from)
		var ct hlc.Timestamp
		var refusal string
		for range cohorts {
			select {
			case v := <-call.ch:
				if v.err != "" && refusal == "" {
					refusal = v.err
				}
				if v.pt > ct {
					ct = v.pt
				}
			case <-r.stop:
				return
			}
		}
		// The pendingPrepare entry stays registered until the outcome is
		// decided (logged or aborted): TxStatusReq answers "not committed"
		// only when a transaction is in NEITHER pendingPrepare nor the
		// decision log, so the in-flight window must never show a gap — a
		// cohort that restarted mid-2PC probes for exactly this state, and
		// a false final verdict would abort a prepare this decision is
		// about to commit. The outcome is recorded in the same critical
		// section for the same reason: a duplicate CommitReq between the
		// delete and the record would slip past both dedupe checks.
		finish := func(outcome hlc.Timestamp) {
			r.mu.Lock()
			delete(r.pendingPrepare, m.TxID)
			r.recordDecisionLocked(m.TxID, outcome)
			r.mu.Unlock()
		}
		abort := func(errText string) {
			finish(0)
			for _, c := range cohorts {
				r.Send(transport.ServerID(r.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: 0})
			}
			r.Send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: errText})
		}
		if refusal != "" {
			// A degraded cohort refused its prepare: abort the 2PC (zero
			// CT releases the healthy cohorts' prepares) and surface the
			// typed refusal to the client.
			abort(refusal)
			return
		}
		if r.tl != nil {
			// The commit decision is logged and made stable BEFORE
			// CommitTx leaves and BEFORE the client ack: the ack's
			// durability promise is this record, and holding CommitTx
			// back until it holds means a failed append/fsync can still
			// abort the whole 2PC cleanly — no cohort has committed yet.
			parts := make([]uint16, 0, len(cohorts))
			for _, c := range cohorts {
				parts = append(parts, uint16(c.partition))
			}
			// Under fsync=always the append AND the fsync are batched
			// across the concurrent commit collections of one tick: one
			// leader writes every staged decision record with a single
			// write+fsync (see txlog.LogCoordCommitSync).
			r.tl.LogCoordCommitSync(m.TxID, ct, parts)
			if err := r.tl.Healthy(); err != nil {
				// The decision never became durable: withdraw it (so a
				// recovery cannot re-drive a commit the client was told
				// failed), abort the cohorts, refuse the client.
				r.tl.CoordAbort(m.TxID)
				abort(err.Error())
				return
			}
		}
		finish(ct)
		for _, c := range cohorts {
			r.Send(transport.ServerID(r.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: ct})
		}
		if !r.proto.BeforeCommitReply(ct) {
			return
		}
		r.ctr.TxCommitted.Inc()
		r.Send(from, &wire.CommitResp{ReqID: m.ReqID, CT: ct})
	})
}

// Prepare runs the cohort side of the 2PC (Algorithm 3 lines 13–19):
// propose a commit timestamp strictly past ht and register the prepare.
// The protocol passes ht already folded over everything the client saw;
// the unified log record keeps whichever snapshot fields the message
// carried (Wren's RT scalar, Cure's SV vector).
//
// The proposal and its registration in the pending list happen atomically
// under mu, the same mutex ApplyTick holds while computing its apply
// upper bound. Without that, a tick could interleave between TickPast and
// the registration, compute an upper bound at or above the proposal
// (TickPast has already advanced the clock), publish it as stable — and
// the transaction would later commit INSIDE the stable region, applied
// after readers were already served without it: the causal/atomic
// violations TestTCCConformance* exhibited under CPU starvation, where the
// preemption window between the two statements stretched to milliseconds.
func (r *Runtime) Prepare(from transport.NodeID, m *wire.PrepareReq, ht hlc.Timestamp) {
	if err := r.Healthy(); err != nil {
		// Degraded durability: refuse, so the coordinator aborts instead
		// of committing a write set this cohort cannot log.
		r.Send(from, &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, Err: err.Error()})
		return
	}
	r.mu.Lock()
	pt := r.Clock.TickPast(ht)
	p := &txlog.PreparedTx{TxID: m.TxID, PT: pt, RST: m.RT, SV: m.SV, Writes: m.Writes}
	r.prepared[m.TxID] = p
	r.mu.Unlock()
	resp := &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, PT: pt}
	if r.tl != nil {
		r.tl.LogPrepare(p)
		if r.tl.SyncOnAppend() {
			// The fsync must not stall the delivery link (reads share it):
			// the proposal leaves on a tracked goroutine once the prepare
			// record is stable.
			r.GoAsync(func() {
				r.tl.Sync()
				r.Send(from, r.checkedPrepareResp(resp))
			})
			return
		}
		resp = r.checkedPrepareResp(resp)
	}
	r.Send(from, resp)
}

// checkedPrepareResp downgrades a prepare proposal to a refusal when the
// append (or fsync) backing it failed: the proposal claims the write set
// is recoverable here, and a vote whose own record never became durable
// must not be cast — only LATER requests being refused would let this one
// transaction commit on a broken promise.
func (r *Runtime) checkedPrepareResp(resp *wire.PrepareResp) *wire.PrepareResp {
	if err := r.tl.Healthy(); err != nil {
		return &wire.PrepareResp{ReqID: resp.ReqID, TxID: resp.TxID, Err: err.Error()}
	}
	return resp
}

func (r *Runtime) handlePrepareResp(m *wire.PrepareResp) {
	r.mu.Lock()
	call := r.pendingPrepare[m.TxID]
	if call != nil {
		if _, dup := call.seen[m.ReqID]; dup {
			call = nil // duplicated vote: count each cohort's answer once
		} else {
			call.seen[m.ReqID] = struct{}{}
		}
	}
	r.mu.Unlock()
	if call == nil {
		return
	}
	select {
	case call.ch <- prepareVote{pt: m.PT, err: m.Err}:
	default:
		// The channel holds one slot per cohort and votes deduplicate by
		// request id above, so it cannot fill — but a delivery goroutine
		// must never block on the commit path regardless.
	}
}

// HandleCommitTx implements Algorithm 3 lines 20–24: move the transaction
// from the pending list to the commit list under its final timestamp. A
// zero CT aborts instead (degraded-cohort refusal). With the transaction
// log enabled the outcome is logged and acknowledged back to the
// coordinator, which releases the coordinator's logged decision once every
// cohort holds the outcome durably; re-driven outcomes after a restart
// resolve recovered prepares, and outcomes already known deduplicate to
// just the acknowledgement. (Exported because TxStatusResp verdicts flow
// through the same path.)
func (r *Runtime) HandleCommitTx(from transport.NodeID, m *wire.CommitTx) {
	if m.CT == 0 {
		r.mu.Lock()
		delete(r.prepared, m.TxID)
		delete(r.recovered, m.TxID)
		r.mu.Unlock()
		if r.tl != nil {
			r.tl.LogAbort(m.TxID)
		}
		return
	}
	r.proto.ObserveCommitTS(m.CT)
	r.mu.Lock()
	committed := false
	if p, ok := r.prepared[m.TxID]; ok {
		delete(r.prepared, m.TxID)
		// A recovered copy of the same prepare (the coordinator's CommitReq
		// was resent across a restart) must go with it, or a later
		// termination probe would commit the write set a second time.
		delete(r.recovered, m.TxID)
		r.committed = append(r.committed, &txlog.CommittedTx{
			TxID: m.TxID, CT: m.CT, RST: p.RST, SV: p.SV, Writes: p.Writes,
		})
		committed = true
	} else if rp, ok := r.recovered[m.TxID]; ok {
		// A re-driven outcome for a prepare recovered from the txlog: the
		// client was acknowledged in a previous life; commit it now.
		delete(r.recovered, m.TxID)
		r.committed = append(r.committed, &txlog.CommittedTx{
			TxID: m.TxID, CT: m.CT, RST: rp.tx.RST, SV: rp.tx.SV, Writes: rp.tx.Writes,
		})
		committed = true
	}
	r.mu.Unlock()
	if r.tl == nil {
		return
	}
	if committed {
		r.tl.LogCommit(m.TxID, m.CT)
	}
	// The ack states "outcome durable here"; it may only leave after the
	// commit record is stable (and not on the delivery goroutine), and
	// never when the append or fsync backing it failed — withholding it
	// keeps the coordinator's decision pending, to be re-driven rather
	// than resolved on a broken promise. DUPLICATE outcomes take the same
	// sync barrier: a re-driven CommitTx can arrive while the first
	// copy's fsync is still in flight, and acknowledging it early would
	// resolve the decision against an unsynced record (the group-commit
	// sync is free once the record is already stable).
	ack := &wire.CommitAck{TxID: m.TxID, Partition: uint16(r.cfg.Partition)}
	if r.tl.SyncOnAppend() {
		r.GoAsync(func() {
			r.tl.Sync()
			if r.tl.Healthy() == nil {
				r.Send(from, ack)
			}
		})
		return
	}
	if r.tl.Healthy() == nil {
		r.Send(from, ack)
	}
}

// handleCommitAck releases the coordinator's logged commit decision once
// the acknowledging cohort — and eventually all of them — holds the
// outcome durably.
func (r *Runtime) handleCommitAck(m *wire.CommitAck) {
	if r.tl != nil {
		r.tl.CoordAck(m.TxID, m.Partition)
	}
}

// handleReplicateAck advances the persisted replication cursor for the
// acknowledging DC: everything up to UpTo is confirmed applied there, so a
// restart re-sends only what lies above. While a post-restart resync is
// outstanding the cursor is pinned below the re-sent tail (only the
// tail's own acknowledgement lifts it) — the txlog clamps the advance.
func (r *Runtime) handleReplicateAck(m *wire.ReplicateAck) {
	if r.tl == nil {
		return
	}
	r.tl.AdvanceCursor(int(m.DC), m.UpTo)
	if m.Resync {
		r.tl.UnpinResync(int(m.DC), m.UpTo)
	}
}

// handleHealthReq answers the operator-facing health probe (wren-cli
// health): whether this server is in read-only admission and why.
func (r *Runtime) handleHealthReq(from transport.NodeID, m *wire.HealthReq) {
	resp := &wire.HealthResp{ReqID: m.ReqID}
	if err := r.Healthy(); err != nil {
		resp.ReadOnly = true
		resp.Err = err.Error()
	}
	r.Send(from, resp)
}

// handleReplicate applies remotely committed transactions (Algorithm 4
// lines 22–26). FIFO links guarantee commit-timestamp order per sender.
// Resync batches — a sender replaying its unconfirmed tail — are
// deduplicated per transaction against the engine; ordinary batches are
// deduplicated against the per-sender watermark, so a duplicated frame or
// a TCP resend across a reconnect is applied exactly once. When the
// transaction log is enabled the batch is acknowledged so the sender's
// replication cursor can advance; fully-seen duplicates still re-ack —
// the duplicate usually means the first acknowledgement was lost.
func (r *Runtime) handleReplicate(m *wire.Replicate) {
	if len(m.Txs) == 0 {
		return
	}
	last := m.Txs[len(m.Txs)-1].CT
	wm := r.replWM.Load(int(m.SrcDC))
	ack := func() {
		if r.tl != nil && r.Healthy() == nil {
			// The engine write honored the fsync policy, so the ack's
			// durability statement is exactly as strong as every other one
			// — unless this replica's write path is degraded and the batch
			// only reached memory: then the ack is withheld, the sender's
			// cursor stays put, and its retained tail can still resync us
			// after a restart instead of leaving the DCs durably diverged.
			// The Resync echo lets the sender's cursor pin distinguish tail
			// confirmation from ordinary traffic.
			r.Send(transport.ServerID(int(m.SrcDC), int(m.Partition)),
				&wire.ReplicateAck{DC: uint8(r.cfg.DC), Partition: m.Partition, UpTo: last, Resync: m.Resync})
		}
	}
	if last <= wm {
		// Every transaction in the batch was already applied here.
		ack()
		return
	}
	if !m.Resync && m.Prev > wm && r.tl != nil {
		// Gap: the sender shipped an earlier batch (ending at Prev) that
		// never arrived. Applying this one would advance the watermark and
		// version vector past transactions we do not hold — and its
		// acknowledgement would move the sender's cursor over the hole,
		// dropping the lost batch from the retained tail for good. Refuse
		// it unacknowledged instead: the sender's cursor stalls at the
		// hole and live resync replays the tail in order. (Without a
		// transaction log there is no cursor or resync to recover with, so
		// the legacy accept-in-order behavior stands.)
		return
	}
	var skip SkipFunc
	if m.Resync || m.Txs[0].CT <= wm {
		// Resync replay, or a partial overlap with already-applied traffic:
		// dedupe per transaction against the engine.
		skip = r.TxApplied
	}
	var puts []store.KV
	for i := range m.Txs {
		puts = r.proto.AppendRemotePuts(puts, m.SrcDC, &m.Txs[i], skip)
	}
	r.st.PutBatch(puts)
	r.ctr.ReplTxApplied.Add(uint64(len(puts)))
	r.replWM.Advance(int(m.SrcDC), last)
	r.VV.Advance(int(m.SrcDC), last)
	r.proto.AfterInstall()
	ack()
}

// handleHeartbeat advances the version-vector entry of an idle remote
// replica (Algorithm 4 lines 27–28).
func (r *Runtime) handleHeartbeat(m *wire.Heartbeat) {
	r.VV.Advance(int(m.SrcDC), m.TS)
	r.proto.AfterInstall()
}

// applyLoop runs Algorithm 4 lines 5–21 every ΔR.
func (r *Runtime) applyLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.ApplyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.ApplyTick(true)
		case <-r.stop:
			return
		}
	}
}

// ApplyTick applies committed transactions up to the safe upper bound and
// replicates them; when called from the apply loop (heartbeat=true) it
// heartbeats idle peers instead. Protocols may also invoke it
// (heartbeat=false) to install snapshots eagerly — Cure does from every
// parked slice read; applyMu keeps those concurrent invocations from
// publishing a bound whose transactions an earlier, still-running tick
// has not finished applying.
func (r *Runtime) ApplyTick(heartbeat bool) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	r.mu.Lock()
	var ub hlc.Timestamp
	if len(r.prepared) > 0 {
		first := true
		for _, p := range r.prepared {
			if first || p.PT < ub {
				ub = p.PT
				first = false
			}
		}
		ub = ub.Prev()
	} else {
		// No pending prepare: the bound follows the protocol's clock
		// reading, which also pins the HLC so any later prepare proposes
		// strictly above ub — otherwise a commit could land at a timestamp
		// already declared stable.
		ub = r.proto.ApplyBound()
	}
	if local := r.VV.Load(r.cfg.DC); ub < local {
		ub = local
	}

	hadCommitted := len(r.committed) > 0
	var apply []*txlog.CommittedTx
	if hadCommitted {
		rest := r.committed[:0]
		for _, c := range r.committed {
			if c.CT <= ub {
				apply = append(apply, c)
			} else {
				rest = append(rest, c)
			}
		}
		r.committed = rest
	}
	r.mu.Unlock()

	// Apply in commit-timestamp order, grouping equal timestamps into one
	// replication message (Algorithm 4 lines 8–16). Each group's writes go
	// through one shard-grouped PutBatch, and all writes happen before
	// the version vector is published so no reader can observe a stable
	// time whose versions are missing.
	sortCommitted(apply)
	var batches []*wire.Replicate
	for i := 0; i < len(apply); {
		j := i
		batch := &wire.Replicate{SrcDC: uint8(r.cfg.DC), Partition: uint16(r.cfg.Partition)}
		var puts []store.KV
		for ; j < len(apply) && apply[j].CT == apply[i].CT; j++ {
			t := apply[j]
			puts = r.proto.AppendLocalPuts(puts, t, nil)
			batch.Txs = append(batch.Txs, r.proto.ReplTxRecord(t))
		}
		r.st.PutBatch(puts)
		batches = append(batches, batch)
		i = j
	}

	r.VV.Advance(r.cfg.DC, ub)
	if r.tl != nil && len(apply) > 0 {
		// Exactly these transactions are now in the engine; the log may
		// release their records once replication confirms them. Marked by
		// id, not by ub: a re-driven recovered commit logged concurrently
		// can carry an old ct ≤ ub without being in this batch.
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.TxID
		}
		r.tl.MarkApplied(ids)
	}
	r.proto.AfterInstall()

	hb := &wire.Heartbeat{SrcDC: uint8(r.cfg.DC), Partition: uint16(r.cfg.Partition), TS: ub}
	for dc := 0; dc < r.cfg.NumDCs; dc++ {
		if dc == r.cfg.DC {
			continue
		}
		if r.tl != nil && !r.resyncDone[dc] {
			// Replication to this DC is held until the restart resync
			// tail is on its link: a batch or heartbeat overtaking the
			// tail would advance the peer's version vector past
			// transactions still in flight behind it. Once the tail is
			// enqueued, this tick (applyMu-serialized) ships one
			// dedupe-safe catch-up of everything still unconfirmed —
			// including this tick's transactions — and normal replication
			// resumes next tick.
			if !r.resyncTailSent[dc].Load() {
				continue
			}
			for i, tail := 0, r.tl.UnreplicatedTail(dc); i < len(tail); i += resendBatchSize {
				batch := &wire.Replicate{SrcDC: uint8(r.cfg.DC), Partition: uint16(r.cfg.Partition), Resync: true}
				for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
					batch.Txs = append(batch.Txs, r.proto.ReplTxRecord(t))
				}
				r.SendBounded(transport.ServerID(dc, r.cfg.Partition), batch)
				r.replPrev.Advance(dc, batch.Txs[len(batch.Txs)-1].CT)
			}
			r.resyncDone[dc] = true
			continue
		}
		prev := r.replPrev.Load(dc)
		for _, b := range batches {
			// Chain the batch to its per-DC predecessor so a receiver that
			// missed one refuses everything after it, and send with bounded
			// retry: a transiently refused batch (an overloaded TCP peer
			// queue) is retried briefly rather than dropped — a lost batch
			// is otherwise only recovered by resync. The batch is shared
			// across destination DCs, so the per-DC chain stamp goes on a
			// shallow copy (the Txs slice is immutable once built).
			bb := *b
			bb.Prev = prev
			r.SendBounded(transport.ServerID(dc, r.cfg.Partition), &bb)
			prev = b.Txs[len(b.Txs)-1].CT
		}
		r.replPrev.Advance(dc, prev)
		if heartbeat && !hadCommitted {
			r.Send(transport.ServerID(dc, r.cfg.Partition), hb)
		}
	}
}

// gossipLoop runs the protocol's stabilization exchange every ΔG.
func (r *Runtime) gossipLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.proto.GossipTick()
		case <-r.stop:
			return
		}
	}
}

// gcLoop exchanges oldest-active snapshots and prunes version chains.
func (r *Runtime) gcLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.gcTick()
		case <-r.stop:
			return
		}
	}
}

// gcTick merges the protocol's oldest-active snapshot with the gossiped
// per-partition floors, prunes version chains below the DC-wide
// threshold, and sweeps abandoned read fan-ins.
func (r *Runtime) gcTick() {
	now := time.Now()
	oldest := r.proto.OldestActiveSnapshot(now)
	// Sweep in-flight read fan-ins whose slice responses will never come
	// (a peer died mid-read): the client has long timed out; dropping the
	// entry lets the fan-in state be reclaimed.
	var staleReads []uint64
	r.pendingSlice.Range(func(reqID uint64, fi *fanin.TxRead) bool {
		if now.Sub(fi.Created()) > r.cfg.TxContextTTL {
			staleReads = append(staleReads, reqID)
		}
		return true
	})
	// A fan-in is registered once per remote slice call, so several stale
	// request ids can map to the same read; its admission slot must be
	// released exactly once. The claims are atomic (LoadAndDelete), so a
	// racing final SliceResp either claims all of a read's entries itself
	// — then it releases and this sweep finds none — or loses at least one
	// to the sweep and can never reach "last".
	released := make(map[*fanin.TxRead]struct{}, len(staleReads))
	for _, reqID := range staleReads {
		fi, ok := r.pendingSlice.LoadAndDelete(reqID)
		if !ok {
			continue
		}
		if _, done := released[fi]; !done {
			released[fi] = struct{}{}
			r.ReleaseClient(fi.From())
		}
	}
	r.mu.Lock()
	if oldest > r.peerOldest[r.cfg.Partition] {
		r.peerOldest[r.cfg.Partition] = oldest
	}
	threshold := r.peerOldest[0]
	for _, t := range r.peerOldest[1:] {
		if t < threshold {
			threshold = t
		}
	}
	r.mu.Unlock()

	msg := &wire.GCBroadcast{Partition: uint16(r.cfg.Partition), Oldest: oldest}
	for p := 0; p < r.cfg.NumPartitions; p++ {
		if p == r.cfg.Partition {
			continue
		}
		r.Send(transport.ServerID(r.cfg.DC, p), msg)
	}

	if threshold > 0 {
		res := r.st.GCStats(threshold)
		if res.Removed > 0 {
			r.ctr.GCRemoved.Add(uint64(res.Removed))
		}
		if res.DroppedKeys > 0 {
			r.ctr.GCKeysDropped.Add(uint64(res.DroppedKeys))
		}
	}
}

func (r *Runtime) handleGCBroadcast(m *wire.GCBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= r.cfg.NumPartitions {
		return
	}
	r.mu.Lock()
	if m.Oldest > r.peerOldest[p] {
		r.peerOldest[p] = m.Oldest
	}
	r.mu.Unlock()
}

// lifecycleLoop runs the periodic transaction-lifecycle maintenance —
// 2PC termination probes, decision re-drives, and the degraded-mode
// repair probe — on its own timer, independent of the optional GC loop.
func (r *Runtime) lifecycleLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(lifecycleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			r.maybeRepair(now)
			r.txLifecycleTick(now)
		case <-r.stop:
			return
		}
	}
}

// maybeRepair is the degraded-mode probation exit: when the transaction
// log has recorded a write-path failure but the storage engine is
// healthy, attempt a full repair (compaction rewrite + probe append —
// see txlog.Repair) at most once per RepairInterval. On success the
// sticky error clears and the server readmits writes; a still-broken log
// stays read-only and is retried next interval. An unhealthy ENGINE is
// never repaired this way — rewriting the txlog proves nothing about the
// engine's own logs — and RepairInterval < 0 disables the exit entirely
// (a degraded server then stays read-only until restart).
func (r *Runtime) maybeRepair(now time.Time) {
	if r.cfg.RepairInterval <= 0 || r.tl == nil {
		return
	}
	if r.tl.Healthy() == nil || r.st.Healthy() != nil {
		return
	}
	if now.Before(r.nextRepair) {
		return
	}
	r.nextRepair = now.Add(r.cfg.RepairInterval)
	r.tl.Repair()
}

// txLifecycleTick is the periodic maintenance of the durable transaction
// lifecycle: probe the coordinators of recovered prepares whose outcome
// has not arrived (cooperative 2PC termination — only an explicit "not
// committed" answer may abort them), and re-drive the CommitTx of
// unresolved commit decisions whose cohorts have not all confirmed a
// durable outcome (a cohort crash can swallow the original CommitTx or
// its ack without this coordinator ever restarting).
func (r *Runtime) txLifecycleTick(now time.Time) {
	if r.tl == nil {
		return
	}
	var probes []uint64
	r.mu.Lock()
	for id, rp := range r.recovered {
		if now.After(rp.nextProbe) {
			probes = append(probes, id)
			rp.nextProbe = now.Add(recoveryGrace)
		}
	}
	r.mu.Unlock()
	for _, id := range probes {
		dc, p := CoordinatorOf(id)
		if dc < r.cfg.NumDCs && p < r.cfg.NumPartitions {
			r.Send(transport.ServerID(dc, p), &wire.TxStatusReq{TxID: id})
		}
	}
	for _, c := range r.tl.RedrivePending(redriveAfter) {
		for _, p := range c.Cohorts {
			r.Send(transport.ServerID(r.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT})
		}
	}
	r.liveResyncTick()
}

// liveResyncTick is the running counterpart of restart resync: when a
// peer DC's replication cursor has not advanced for several ticks while a
// committed tail is outstanding — its batches or their acknowledgements
// lost to a broken link, a shed queue, or a peer crash — the tail is
// re-sent as dedupe-safe resync batches. The receiver's watermark and
// per-transaction engine check apply each transaction exactly once and
// re-acknowledge, so a stall caused by lost acks alone resolves without
// moving any data.
func (r *Runtime) liveResyncTick() {
	r.applyMu.Lock()
	ready := append([]bool(nil), r.resyncDone...)
	r.applyMu.Unlock()
	for dc := 0; dc < r.cfg.NumDCs; dc++ {
		// Skip peers whose restart resync is still in flight: ApplyTick
		// owns that replay and gates ordinary replication behind it.
		if dc == r.cfg.DC || !ready[dc] {
			continue
		}
		tail := r.tl.UnreplicatedTail(dc)
		if len(tail) == 0 {
			r.tailHead[dc], r.tailStall[dc] = 0, 0
			continue
		}
		if head := tail[0].CT; head != r.tailHead[dc] {
			r.tailHead[dc], r.tailStall[dc] = head, 0
			continue
		}
		if r.tailStall[dc]++; r.tailStall[dc] < liveResyncStallTicks {
			continue
		}
		r.tailStall[dc] = 0
		for i := 0; i < len(tail); i += resendBatchSize {
			batch := &wire.Replicate{SrcDC: uint8(r.cfg.DC), Partition: uint16(r.cfg.Partition), Resync: true}
			for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
				batch.Txs = append(batch.Txs, r.proto.ReplTxRecord(t))
			}
			if !r.SendBounded(transport.ServerID(dc, r.cfg.Partition), batch) {
				break
			}
			r.replPrev.Advance(dc, batch.Txs[len(batch.Txs)-1].CT)
		}
	}
}

// handleTxStatusReq answers a 2PC-termination probe from the
// coordinator's decisions. "No decision retained" is a final abort
// verdict for a cohort still holding the prepare — either the client was
// never acknowledged, or the decision was resolved, which requires that
// very cohort's durable-commit ack, contradicting a still-dangling
// prepare — UNLESS the 2PC is still collecting votes: then the outcome is
// genuinely undecided (a slow sibling cohort can stall it past the probe
// grace) and the coordinator stays silent, leaving the prober to retry.
//
// Clients send the same probe (with a non-zero ReqID) after a commit
// times out. For them the in-memory decision record answers too — it
// covers resolved decisions the txlog no longer retains, and backends
// without a log at all — and a "not committed" answer FENCES the
// transaction id: the verdict licenses the client to re-drive its write
// set on another coordinator, so a delayed CommitReq surfacing later must
// find the id already aborted, never a fresh 2PC.
func (r *Runtime) handleTxStatusReq(from transport.NodeID, m *wire.TxStatusReq) {
	var ct hlc.Timestamp
	var ok bool
	if r.tl != nil {
		ct, ok = r.tl.CoordDecision(m.TxID)
	}
	if !ok {
		r.mu.Lock()
		if c, decided := r.lookupDecisionLocked(m.TxID); decided && c > 0 {
			ct, ok = c, true
		}
		if !ok {
			if _, inFlight := r.pendingPrepare[m.TxID]; inFlight {
				r.mu.Unlock()
				return
			}
			if m.ReqID != 0 {
				r.recordDecisionLocked(m.TxID, 0)
			}
		}
		r.mu.Unlock()
	}
	r.Send(from, &wire.TxStatusResp{ReqID: m.ReqID, TxID: m.TxID, CT: ct, Committed: ok})
}

// handleTxStatusResp settles a recovered prepare: a committed verdict
// flows through the normal commit path (including the durable-commit ack
// back to the coordinator); a not-committed verdict finally aborts it.
func (r *Runtime) handleTxStatusResp(from transport.NodeID, m *wire.TxStatusResp) {
	if m.Committed {
		r.HandleCommitTx(from, &wire.CommitTx{TxID: m.TxID, CT: m.CT})
		return
	}
	r.mu.Lock()
	_, ok := r.recovered[m.TxID]
	delete(r.recovered, m.TxID)
	r.mu.Unlock()
	if ok && r.tl != nil {
		r.tl.LogAbort(m.TxID)
	}
}
