package bench

import (
	"fmt"
	"strings"
	"time"

	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// AblationResult is one row of an ablation study.
type AblationResult struct {
	Variant     string
	Throughput  float64
	MeanLatMs   float64
	P99LatMs    float64
	ExtraLabel  string
	ExtraValue  float64
	StabBytesPS float64
}

// RunBlockingCommitAblation compares real Wren (client-side cache) against
// the "simple solution" the paper rejects in §III-B: blocking each commit
// until the write is covered by the local stable snapshot. It quantifies
// the commit-latency penalty CANToR's cache avoids.
func RunBlockingCommitAblation(o Options) ([]AblationResult, error) {
	variants := []struct {
		name     string
		blocking bool
	}{
		{name: "Wren (client cache)", blocking: false},
		{name: "Wren (blocking commit)", blocking: true},
	}
	var out []AblationResult
	for _, v := range variants {
		ccfg := o.clusterConfig(cluster.Wren, o.DCs, o.Partitions)
		ccfg.BlockingCommit = v.blocking
		cl, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		pTx := 4
		if pTx > o.Partitions {
			pTx = o.Partitions
		}
		w, err := ycsb.NewWorkload(o.workloadConfig(ycsb.Mix95, pTx, o.Partitions))
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := Preload(cl, w); err != nil {
			cl.Close()
			return nil, err
		}
		res, err := RunLoadPoint(LoadConfig{
			Cluster: cl, Workload: w, ThreadsPerClient: o.FixedThreads,
			Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
		})
		cl.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant:    v.name,
			Throughput: res.Throughput,
			MeanLatMs:  res.MeanLatMs,
			P99LatMs:   res.P99LatMs,
		})
	}
	return out, nil
}

// RunGossipIntervalAblation sweeps BiST's ΔG, quantifying the trade-off the
// paper describes: a longer stabilization period lowers gossip traffic but
// increases the age of the local stable snapshot, and with it local update
// visibility latency.
func RunGossipIntervalAblation(o Options, intervals []time.Duration) ([]AblationResult, error) {
	var out []AblationResult
	for _, ival := range intervals {
		opt := o
		opt.GossipInterval = ival
		vis, err := RunVisibility(VisibilityConfig{
			Options:    opt,
			Protocol:   cluster.Wren,
			ProbeEvery: 10 * time.Millisecond,
			Duration:   opt.Measure,
		})
		if err != nil {
			return nil, fmt.Errorf("gossip ablation %v: %w", ival, err)
		}
		// Run a short load point on the same settings for traffic numbers.
		cl, err := cluster.New(opt.clusterConfig(cluster.Wren, opt.DCs, opt.Partitions))
		if err != nil {
			return nil, err
		}
		pTx := 4
		if pTx > opt.Partitions {
			pTx = opt.Partitions
		}
		w, err := ycsb.NewWorkload(opt.workloadConfig(ycsb.Mix95, pTx, opt.Partitions))
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := Preload(cl, w); err != nil {
			cl.Close()
			return nil, err
		}
		res, err := RunLoadPoint(LoadConfig{
			Cluster: cl, Workload: w, ThreadsPerClient: opt.FixedThreads,
			Warmup: opt.Warmup, Measure: opt.Measure, Seed: opt.Seed,
		})
		cl.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant:     fmt.Sprintf("ΔG=%v", ival),
			Throughput:  res.Throughput,
			MeanLatMs:   res.MeanLatMs,
			ExtraLabel:  "local visibility ms",
			ExtraValue:  vis.LocalMean / 1000,
			StabBytesPS: float64(res.StabBytes) / res.WindowSeconds,
		})
	}
	return out, nil
}

// RunGossipTopologyAblation compares BiST's all-to-all broadcast against
// the tree aggregation the paper sketches in §IV-B: 2(N−1) stabilization
// messages per round instead of N(N−1), traded against one extra hop of
// snapshot staleness.
func RunGossipTopologyAblation(o Options) ([]AblationResult, error) {
	variants := []struct {
		name string
		tree bool
	}{
		{name: "BiST broadcast (N(N-1) msgs)", tree: false},
		{name: "BiST tree (2(N-1) msgs)", tree: true},
	}
	var out []AblationResult
	for _, v := range variants {
		ccfg := o.clusterConfig(cluster.Wren, o.DCs, o.Partitions)
		ccfg.GossipTree = v.tree
		cl, err := cluster.New(ccfg)
		if err != nil {
			return nil, err
		}
		pTx := 4
		if pTx > o.Partitions {
			pTx = o.Partitions
		}
		w, err := ycsb.NewWorkload(o.workloadConfig(ycsb.Mix95, pTx, o.Partitions))
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := Preload(cl, w); err != nil {
			cl.Close()
			return nil, err
		}
		res, err := RunLoadPoint(LoadConfig{
			Cluster: cl, Workload: w, ThreadsPerClient: o.FixedThreads,
			Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
		})
		cl.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant:     v.name,
			Throughput:  res.Throughput,
			MeanLatMs:   res.MeanLatMs,
			StabBytesPS: float64(res.StabBytes) / res.WindowSeconds,
		})
	}
	return out, nil
}

// RunSnapshotAgeAblation measures how far behind "now" the snapshots handed
// to transactions are, for each protocol — the freshness cost of Wren's
// nonblocking design that the paper accepts as its trade-off (§III-B).
//
// Clock skew is forced to zero for this ablation: the structural ordering it
// demonstrates (Wren's stable snapshot needs an extra apply+gossip round
// that Cure's current-clock snapshot does not) is sub-millisecond on small
// topologies, and ±ms NTP-style offsets inject symmetric noise that can
// invert the measured ordering without changing the structural cost.
func RunSnapshotAgeAblation(o Options) ([]AblationResult, error) {
	o.ClockSkew = 0
	var out []AblationResult
	for _, proto := range []cluster.Protocol{cluster.Wren, cluster.Cure} {
		vis, err := RunVisibility(VisibilityConfig{
			Options:    o,
			Protocol:   proto,
			ProbeEvery: 10 * time.Millisecond,
			Duration:   o.Measure,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{
			Variant:    proto.String(),
			ExtraLabel: "local visibility ms (snapshot age)",
			ExtraValue: vis.LocalMean / 1000,
		})
	}
	return out, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.Variant)
		if r.Throughput > 0 {
			fmt.Fprintf(&b, " tx/s=%-9.0f mean=%-7.2fms", r.Throughput, r.MeanLatMs)
		}
		if r.P99LatMs > 0 {
			fmt.Fprintf(&b, " p99=%-7.2fms", r.P99LatMs)
		}
		if r.ExtraLabel != "" {
			fmt.Fprintf(&b, " %s=%.2f", r.ExtraLabel, r.ExtraValue)
		}
		if r.StabBytesPS > 0 {
			fmt.Fprintf(&b, " stabB/s=%.0f", r.StabBytesPS)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
