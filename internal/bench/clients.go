package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"wren/internal/cluster"
	"wren/internal/stats"
)

// The clients sweep prices the multiplexed client stack: the same
// closed-loop session workload (begin, read two keys, write one, commit)
// on a Wren memory cluster, once with the legacy one-endpoint-per-session
// wiring and once with every session pipelining over the DC's shared
// connection pool, at each session count. The pooled rows also exercise
// per-connection admission control — thousands of sessions funnel through
// a handful of links, so servers shed past the inflight bound and clients
// retry after backoff — and the sweep proves no request is lost to that
// machinery: every issued request must resolve (success or error) before
// the cell ends, and the Unresolved column must read zero. CI uploads
// BENCH_clients.json so successive PRs leave a comparable trajectory.

// ClientsPoints are the default session counts swept.
var ClientsPoints = []int{64, 256, 1000}

// ClientsQuickPoints are the session counts for smoke runs.
var ClientsQuickPoints = []int{8, 32}

// DefaultClientPoolLinks is the pool width the sweep's pooled rows use.
const DefaultClientPoolLinks = 4

// ClientsRow is one measured cell: a session count, pooled or not.
type ClientsRow struct {
	Sessions   int     `json:"sessions"`
	Pooled     bool    `json:"pooled"`
	Links      int     `json:"links"` // pool links (0 = one endpoint per session)
	TxPerSec   float64 `json:"tx_per_sec"`
	ReqPerSec  float64 `json:"req_per_sec"`
	MeanLatMs  float64 `json:"mean_lat_ms"` // full tx cycle: begin+read+commit
	P50LatMs   float64 `json:"p50_lat_ms"`
	P99LatMs   float64 `json:"p99_lat_ms"`
	Committed  uint64  `json:"committed"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed"`       // requests refused at admission (all retried)
	Unresolved uint64  `json:"unresolved"` // issued requests that never returned — must be 0
}

// ClientsReport is the machine-readable output of the sweep.
type ClientsReport struct {
	Protocol         string       `json:"protocol"`
	GoMaxProcs       int          `json:"gomaxprocs"`
	NumCPU           int          `json:"num_cpu"`
	DCs              int          `json:"dcs"`
	Partitions       int          `json:"partitions"`
	RequestTimeoutMs float64      `json:"request_timeout_ms"`
	RetryAttempts    int          `json:"retry_attempts"`
	Rows             []ClientsRow `json:"rows"`
}

// RunClients sweeps the given session counts on a Wren memory cluster,
// one fresh cluster per cell, pairing an unpooled row with a pooled row
// (links connection-pool links per DC) at each count.
func RunClients(o Options, points []int, links int) (*ClientsReport, error) {
	if len(points) == 0 {
		points = ClientsPoints
	}
	if links <= 0 {
		links = DefaultClientPoolLinks
	}
	const (
		requestTimeout = time.Second
		retryAttempts  = 5
		retryBackoff   = 2 * time.Millisecond
	)
	rep := &ClientsReport{
		Protocol:         cluster.Wren.String(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		DCs:              1,
		Partitions:       min(o.Partitions, 4),
		RequestTimeoutMs: float64(requestTimeout) / float64(time.Millisecond),
		RetryAttempts:    retryAttempts,
	}
	for _, sessions := range points {
		if sessions <= 0 {
			return rep, fmt.Errorf("bench: session count %d must be positive", sessions)
		}
		for _, pooled := range []bool{false, true} {
			eo := o
			eo.StoreBackend = "memory" // the sweep prices the client stack, not the disk
			cfg := eo.clusterConfig(cluster.Wren, 1, rep.Partitions)
			cfg.RequestTimeout = requestTimeout
			cfg.RetryAttempts = retryAttempts
			cfg.RetryBackoff = retryBackoff
			if pooled {
				cfg.ClientPoolLinks = links
			}
			row, err := runClientsCell(o, cfg, sessions, pooled, links)
			if err != nil {
				return rep, fmt.Errorf("clients sweep (%d sessions, pooled=%v): %w", sessions, pooled, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func runClientsCell(o Options, cfg cluster.Config, sessions int, pooled bool, links int) (ClientsRow, error) {
	cl, err := cluster.New(cfg)
	if err != nil {
		return ClientsRow{}, err
	}
	defer cl.Close()
	partitions := cfg.NumPartitions

	var (
		hist      = stats.NewHistogram()
		committed stats.Counter
		errCount  stats.Counter
		reqCount  stats.Counter // requests resolved inside the measure window
		issued    stats.Counter // requests sent, lifetime
		resolved  stats.Counter // requests answered or errored, lifetime
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		errCh     = make(chan error, sessions)
	)
	start := make(chan struct{})
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			client, err := cl.NewClient(0, s%partitions)
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			// call brackets one client request so a hang is visible as
			// issued > resolved instead of a silent stall.
			measure := false
			call := func(f func() error) error {
				issued.Inc()
				err := f()
				resolved.Inc()
				if measure {
					reqCount.Inc()
				}
				return err
			}
			k1 := fmt.Sprintf("cl-%d-a", s%o.KeysPerPartition)
			k2 := fmt.Sprintf("cl-%d-b", s%o.KeysPerPartition)
			k3 := fmt.Sprintf("cl-%d-c", s%o.KeysPerPartition)
			<-start
			warmupEnd := time.Now().Add(o.Warmup)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !measure && time.Now().After(warmupEnd) {
					measure = true
				}
				t0 := time.Now()
				var tx cluster.Tx
				if err := call(func() (e error) { tx, e = client.Begin(); return }); err != nil {
					errCount.Inc()
					continue
				}
				if err := call(func() (e error) { _, e = tx.Read(k1, k2); return }); err != nil {
					errCount.Inc()
					_ = call(tx.Abort) // clears the session's open tx
					continue
				}
				if err := tx.Write(k3, []byte("v")); err != nil { // local buffer, no request
					errCount.Inc()
					_ = call(tx.Abort)
					continue
				}
				if err := call(func() (e error) { _, e = tx.Commit(); return }); err != nil {
					errCount.Inc()
					continue
				}
				if measure {
					hist.RecordDuration(time.Since(t0))
					committed.Inc()
				}
			}
		}(s)
	}
	close(start)
	time.Sleep(o.Warmup + o.Measure)
	close(stop)

	// Join with a generous timeout: a session that cannot exit is stuck in
	// a request that never resolved — exactly what the Unresolved column
	// exists to expose (a shed or dropped request must retry or error, not
	// vanish).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
	}
	unresolved := issued.Load() - resolved.Load()
	select {
	case err := <-errCh:
		return ClientsRow{}, err
	default:
	}
	if err := cl.EnginesHealthy(); err != nil {
		return ClientsRow{}, fmt.Errorf("cluster finished degraded: %w", err)
	}
	rowLinks := 0
	if pooled {
		rowLinks = links
	}
	secs := o.Measure.Seconds()
	return ClientsRow{
		Sessions:   sessions,
		Pooled:     pooled,
		Links:      rowLinks,
		TxPerSec:   float64(committed.Load()) / secs,
		ReqPerSec:  float64(reqCount.Load()) / secs,
		MeanLatMs:  hist.Mean() / 1000,
		P50LatMs:   float64(hist.Percentile(50)) / 1000,
		P99LatMs:   float64(hist.Percentile(99)) / 1000,
		Committed:  committed.Load(),
		Errors:     errCount.Load(),
		Shed:       cl.ShedRequests(),
		Unresolved: unresolved,
	}, nil
}

// Unresolved returns the total requests across all rows that never
// resolved; CI fails the sweep when it is nonzero.
func (r *ClientsReport) Unresolved() uint64 {
	var total uint64
	for _, row := range r.Rows {
		total += row.Unresolved
	}
	return total
}

// WriteJSON serializes the report, indented for diffable commits.
func (r *ClientsReport) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatClients renders the report for humans.
func FormatClients(r *ClientsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Client multiplexing sweep (%s, %dx%d, GOMAXPROCS=%d, timeout=%.0fms, retries=%d)\n",
		r.Protocol, r.DCs, r.Partitions, r.GoMaxProcs, r.RequestTimeoutMs, r.RetryAttempts)
	fmt.Fprintf(&b, "%9s %7s %6s %10s %10s %9s %9s %9s %8s %7s %11s\n",
		"sessions", "pooled", "links", "tx/s", "req/s", "mean(ms)", "p50(ms)", "p99(ms)", "errors", "shed", "unresolved")
	for _, row := range r.Rows {
		pooled := "no"
		if row.Pooled {
			pooled = "yes"
		}
		fmt.Fprintf(&b, "%9d %7s %6d %10.0f %10.0f %9.2f %9.2f %9.2f %8d %7d %11d\n",
			row.Sessions, pooled, row.Links, row.TxPerSec, row.ReqPerSec,
			row.MeanLatMs, row.P50LatMs, row.P99LatMs, row.Errors, row.Shed, row.Unresolved)
	}
	return b.String()
}
