package bench

import (
	"encoding/json"
	"testing"
	"time"
)

// TestReadPathSuiteSmoke runs a miniature read-path sweep and asserts the
// structural acceptance criterion of the contention-free read path: the
// runtime mutex profile contains NO contention sample on a plain
// sync.Mutex inside the server read handlers. After the refactor those
// handlers own no plain mutex at all (atomic stable times, RWMutex-striped
// request maps, per-read fan-in locks only in response handlers), so any
// such sample is a regression — on CI's multi-core runners this bites.
func TestReadPathSuiteSmoke(t *testing.T) {
	o := SmokeOptions()
	o.DCs = 2
	o.Partitions = 2
	o.Warmup = 150 * time.Millisecond
	o.Measure = 400 * time.Millisecond
	o.KeysPerPartition = 100

	rep, err := RunReadPath(o, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(ReadPathWorkloads) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(ReadPathWorkloads))
	}
	for _, row := range rep.Rows {
		if row.Committed == 0 {
			t.Errorf("workload %s x%d committed nothing", row.Workload, row.Threads)
		}
		if row.Errors > 0 {
			t.Errorf("workload %s x%d had %d errors", row.Workload, row.Threads, row.Errors)
		}
	}
	if !rep.Mutex.Clean() {
		t.Fatalf("read path contended a server-wide mutex: %d samples, first stack:\n%s",
			rep.Mutex.ReadPathSamples, rep.Mutex.ReadPathFootprint)
	}
	data, err := rep.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ReadPathReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

func TestParseMutexProfile(t *testing.T) {
	const sample = `--- mutex:
cycles/second=1000000000
sampling period=1
5000000 2 @ 0x44a5fd 0x477892
#	0x44a5fc	sync.(*Mutex).Unlock+0x7c	/usr/local/go/src/sync/mutex.go:223
#	0x477891	wren/internal/core.(*Server).applyTick+0x51	/root/repo/internal/core/server.go:900
2000000 1 @ 0x44a5fd 0x479999
#	0x44a5fc	sync.(*Mutex).Unlock+0x7c	/usr/local/go/src/sync/mutex.go:223
#	0x479998	wren/internal/core.(*Server).handleSliceReq+0x20	/root/repo/internal/core/server.go:600
3000000 1 @ 0x44a5fd 0x479999 0x47aaaa
#	0x44a5fc	sync.(*RWMutex).RUnlock+0x30	/usr/local/go/src/sync/rwmutex.go:100
#	0x479998	wren/internal/store.(*Store).ReadVisibleBatchInto+0x88	/root/repo/internal/store/store.go:280
#	0x47aaa9	wren/internal/core.(*Server).handleSliceReq+0x20	/root/repo/internal/core/server.go:600
4000000 1 @ 0x44a5fd 0x479999 0x47bbbb
#	0x44a5fc	sync.(*Mutex).Unlock+0x7c	/usr/local/go/src/sync/mutex.go:223
#	0x479998	wren/internal/transport.(*link).enqueue+0x40	/root/repo/internal/transport/transport.go:380
#	0x47bbba	wren/internal/core.(*Server).handleSliceReq+0x20	/root/repo/internal/core/server.go:600
6000000 3 @ 0x44a5fd 0x479999 0x47cccc 0x47dddd
#	0x44a5fc	sync.(*Mutex).Unlock+0x7c	/usr/local/go/src/sync/mutex.go:223
#	0x479998	wren/internal/core.(*Server).handleTxRead+0x51	/root/repo/internal/core/server.go:560
#	0x47cccb	wren/internal/core.(*Server).HandleMessage+0x30	/root/repo/internal/core/server.go:480
#	0x47dddc	wren/internal/transport.(*link).run+0x88	/root/repo/internal/transport/transport.go:461
`
	rep := ParseMutexProfile(sample)
	if rep.CyclesPerSecond != 1000000000 {
		t.Fatalf("cycles/second = %d", rep.CyclesPerSecond)
	}
	if rep.TotalSamples != 5 {
		t.Fatalf("total samples = %d, want 5", rep.TotalSamples)
	}
	// Sample 1: plain mutex but not in a read handler — excluded.
	// Sample 2: plain mutex inside handleSliceReq — the regression, counted.
	// Sample 3: striped RWMutex read-lock under a handler — excluded.
	// Sample 4: the transport's per-link queue mutex under s.send (transport
	// frame LEAFWARD of the handler) — excluded: per-link, not server-wide.
	// Sample 5: a plain mutex owned by handleTxRead itself, delivered on a
	// transport goroutine (transport frame ROOTWARD of the handler) — the
	// old server-wide design's exact footprint; MUST be counted, since every
	// handler runs on a transport delivery goroutine.
	if rep.ReadPathSamples != 2 {
		t.Fatalf("read-path samples = %d, want 2", rep.ReadPathSamples)
	}
	if rep.ReadPathDelayMs != 8.0 {
		t.Fatalf("read-path delay = %.2fms, want 8.00", rep.ReadPathDelayMs)
	}
	if rep.Clean() {
		t.Fatal("report with a read-path sample must not be Clean")
	}
}
