// Package bench is the measurement harness that regenerates every figure of
// the paper's evaluation (§V): closed-loop clients driving YCSB-style
// workloads against Wren/Cure/H-Cure clusters, recording throughput,
// latency, blocking time, traffic per protocol class, and update visibility
// latency.
package bench

import (
	"fmt"
	"sync"
	"time"

	"wren/internal/cluster"
	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/wire"
	"wren/internal/ycsb"
)

// hlcTS converts a raw int64 back to an hlc.Timestamp.
func hlcTS(v int64) hlc.Timestamp { return hlc.Timestamp(v) }

// LoadConfig drives one load point: a fixed number of closed-loop client
// threads per (DC, partition) pair, as in the paper (§V-A: one client
// process per partition per DC, 1..16 threads per process).
type LoadConfig struct {
	Cluster          *cluster.Cluster
	Workload         *ycsb.Workload
	ThreadsPerClient int
	Warmup           time.Duration
	Measure          time.Duration
	Seed             int64
}

// Result is the outcome of one load point.
type Result struct {
	Protocol string
	Threads  int // total client threads across the system
	// Throughput is committed transactions per second during the
	// measurement window.
	Throughput float64
	// Latencies in milliseconds.
	MeanLatMs float64
	P50LatMs  float64
	P99LatMs  float64
	// Blocking statistics (Cure/H-Cure; zero for Wren).
	BlockedShare  float64 // fraction of transactions that blocked
	MeanBlockMs   float64 // mean blocking time of blocked transactions
	BlockedP99Ms  float64
	Committed     uint64
	Errors        uint64
	WindowSeconds float64
	// Traffic during the measurement window.
	ReplInterBytes uint64 // inter-DC replication + heartbeats
	StabBytes      uint64 // intra-DC stabilization gossip
	ClientBytes    uint64
	TxBytes        uint64
}

// Preload writes every workload key once (from DC 0) and waits until the
// fill is visible in every DC, so measurements never read missing keys.
func Preload(cl *cluster.Cluster, w *ycsb.Workload) error {
	client, err := cl.NewClient(0, 0)
	if err != nil {
		return err
	}
	defer client.Close()

	cfg := cl.Config()
	value := make([]byte, w.Config().ValueSize)
	const batch = 64
	var lastCT, count = int64(0), 0
	var lastKey string
	pending := 0
	tx, err := client.Begin()
	if err != nil {
		return err
	}
	for _, keys := range w.AllKeys() {
		for _, k := range keys {
			if err := tx.Write(k, value); err != nil {
				return err
			}
			lastKey = k
			pending++
			count++
			if pending >= batch {
				ct, err := tx.Commit()
				if err != nil {
					return fmt.Errorf("preload commit: %w", err)
				}
				lastCT = int64(ct)
				pending = 0
				if tx, err = client.Begin(); err != nil {
					return err
				}
			}
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		return fmt.Errorf("preload final commit: %w", err)
	}
	if pending > 0 {
		lastCT = int64(ct)
	}
	if count == 0 {
		return nil
	}

	// Wait for the fill to become visible everywhere.
	p := sharding.PartitionOf(lastKey, cfg.NumPartitions)
	deadline := time.Now().Add(30 * time.Second)
	for dc := 0; dc < cfg.NumDCs; dc++ {
		for {
			visible := false
			if dc == 0 {
				visible = cl.LocalUpdateVisible(0, p, hlcTS(lastCT))
			} else {
				visible = cl.RemoteUpdateVisible(dc, p, 0, hlcTS(lastCT))
			}
			if visible {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("preload not visible in DC %d within 30s", dc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// RunLoadPoint runs one closed-loop load point and reports the aggregate
// result. The traffic counters are reset at the start of the measurement
// window so they cover exactly the measured interval.
func RunLoadPoint(cfg LoadConfig) (Result, error) {
	cl := cfg.Cluster
	ccfg := cl.Config()
	if cfg.Warmup <= 0 {
		cfg.Warmup = 500 * time.Millisecond
	}
	if cfg.Measure <= 0 {
		cfg.Measure = 2 * time.Second
	}

	type threadState struct {
		client cluster.Client
		gen    *ycsb.Generator
	}
	var threads []*threadState
	for dc := 0; dc < ccfg.NumDCs; dc++ {
		for p := 0; p < ccfg.NumPartitions; p++ {
			for t := 0; t < cfg.ThreadsPerClient; t++ {
				client, err := cl.NewClient(dc, p)
				if err != nil {
					return Result{}, err
				}
				seed := cfg.Seed + int64(dc*100000+p*100+t)
				threads = append(threads, &threadState{
					client: client,
					gen:    cfg.Workload.NewGenerator(seed),
				})
			}
		}
	}
	defer func() {
		for _, ts := range threads {
			ts.client.Close()
		}
	}()

	var (
		latHist   = stats.NewHistogram()
		blockHist = stats.NewHistogram()
		committed stats.Counter
		blocked   stats.Counter
		errCount  stats.Counter
		inWindow  syncFlag
	)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, ts := range threads {
		wg.Add(1)
		go func(ts *threadState) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				plan := ts.gen.Next()
				start := time.Now()
				tx, err := ts.client.Begin()
				if err != nil {
					errCount.Inc()
					continue
				}
				if len(plan.ReadKeys) > 0 {
					if _, err := tx.Read(plan.ReadKeys...); err != nil {
						errCount.Inc()
						_ = tx.Abort()
						continue
					}
				}
				for _, w := range plan.Writes {
					_ = tx.Write(w.Key, w.Value)
				}
				if _, err := tx.Commit(); err != nil {
					errCount.Inc()
					continue
				}
				if inWindow.get() {
					latHist.RecordDuration(time.Since(start))
					committed.Inc()
					if b := tx.Blocked(); b > 0 {
						blocked.Inc()
						blockHist.RecordDuration(b)
					}
				}
			}
		}(ts)
	}

	time.Sleep(cfg.Warmup)
	cl.Network().ResetStats()
	inWindow.set(true)
	windowStart := time.Now()
	time.Sleep(cfg.Measure)
	inWindow.set(false)
	window := time.Since(windowStart)
	netStats := cl.Network().Stats()
	close(stop)
	wg.Wait()

	n := committed.Load()
	res := Result{
		Protocol:       ccfg.Protocol.String(),
		Threads:        len(threads),
		Committed:      n,
		Errors:         errCount.Load(),
		WindowSeconds:  window.Seconds(),
		Throughput:     float64(n) / window.Seconds(),
		MeanLatMs:      latHist.Mean() / 1000,
		P50LatMs:       float64(latHist.Percentile(50)) / 1000,
		P99LatMs:       float64(latHist.Percentile(99)) / 1000,
		ReplInterBytes: netStats.InterBytes[wire.ClassReplication],
		StabBytes:      netStats.Bytes[wire.ClassStabilization],
		ClientBytes:    netStats.Bytes[wire.ClassClient],
		TxBytes:        netStats.Bytes[wire.ClassTransaction],
	}
	if n > 0 {
		res.BlockedShare = float64(blocked.Load()) / float64(n)
	}
	if blocked.Load() > 0 {
		res.MeanBlockMs = blockHist.Mean() / 1000
		res.BlockedP99Ms = float64(blockHist.Percentile(99)) / 1000
	}
	return res, nil
}

// syncFlag is a tiny atomic boolean.
type syncFlag struct {
	mu sync.RWMutex
	v  bool
}

func (f *syncFlag) set(v bool) {
	f.mu.Lock()
	f.v = v
	f.mu.Unlock()
}

func (f *syncFlag) get() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.v
}
