package bench

import "testing"

// TestBigDataProfile pins the large-dataset acceptance properties the
// profile reports to CI: the SST engine settles the dataset into sorted
// runs, keeps only a sparse index resident (far under the dense-index
// estimate), answers negative lookups without per-run disk reads, and
// every backend finishes the profile healthy.
func TestBigDataProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("big-data profile loads several MB per engine")
	}
	rows, err := RunBigData([]string{"memory", "wal", "sst"}, 1)
	if err != nil {
		t.Fatalf("RunBigData: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, row := range rows {
		if !row.Healthy {
			t.Errorf("engine %s finished unhealthy", row.Engine)
		}
		if row.DataBytes < 16*bigDataFlushBytes {
			t.Errorf("engine %s dataset %dB is under the 16x-memtable bar", row.Engine, row.DataBytes)
		}
	}
	var sst BigDataRow
	for _, row := range rows {
		if row.Engine == "sst" {
			sst = row
		}
	}
	if sst.Runs < 2 {
		t.Errorf("sst settled into %d runs; the dataset should span several", sst.Runs)
	}
	if sst.ResidentIndexBytes <= 0 || sst.ResidentIndexBytes >= sst.FullIndexEstBytes {
		t.Errorf("sst resident index %dB not sparse against dense estimate %dB",
			sst.ResidentIndexBytes, sst.FullIndexEstBytes)
	}
	// Bloom filters make a miss cheaper than a point read that must
	// fetch a data block; at minimum a miss must not cost more than a
	// small multiple of a hit even with several runs live.
	if sst.UniformMissMicros > 4*sst.PointReadMicros+1 {
		t.Errorf("sst uniform miss %.2fus vs point read %.2fus: misses are scaling with run count",
			sst.UniformMissMicros, sst.PointReadMicros)
	}
}
