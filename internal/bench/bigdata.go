package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/sst"
	"wren/internal/store/wal"
)

// The big-data profile measures each storage engine directly — no
// cluster, no protocol — on a dataset many times larger than the SST
// engine's memtable, so the columns isolate what the LSM machinery
// costs and saves: how many sorted runs and levels the data settled
// into, how many bytes of index stay resident (fence keys and Bloom
// bits, versus the full-index estimate a dense index would pin), and
// what a negative lookup costs when the Bloom filters are the only
// thing standing between a miss and a disk read per run. Misses are
// probed both uniformly and Zipfian-skewed, the mix a cache-hostile
// read-mostly workload produces.

// bigDataKeys/bigDataValueBytes size the profile dataset: ~4MB of raw
// values against a 64KB memtable — 64x FlushBytes, comfortably past the
// >=16x bar where the sparse index starts to matter.
const (
	bigDataKeys       = 16384
	bigDataValueBytes = 256
	bigDataFlushBytes = 64 << 10
	bigDataProbes     = 4096
)

// BigDataRow is one engine's large-dataset profile.
type BigDataRow struct {
	Engine             string  `json:"engine"`
	Keys               int     `json:"keys"`
	ValueBytes         int     `json:"value_bytes"`
	DataBytes          int64   `json:"data_bytes"`
	FlushBytes         int64   `json:"flush_bytes"` // 0 for non-LSM engines
	Runs               int     `json:"runs"`
	Levels             int     `json:"levels"`
	ResidentIndexBytes int64   `json:"resident_index_bytes"`
	FullIndexEstBytes  int64   `json:"full_index_est_bytes"` // dense-index baseline
	UniformMissMicros  float64 `json:"uniform_miss_micros"`
	ZipfMissMicros     float64 `json:"zipf_miss_micros"`
	PointReadMicros    float64 `json:"point_read_micros"`
	Healthy            bool    `json:"healthy"`
}

// lsmIntrospect is the optional metrics surface the SST engine exposes;
// other engines report zeros.
type lsmIntrospect interface {
	Runs() int
	Levels() int
	ResidentIndexBytes() int64
}

// openBigDataEngine builds one backend for the profile. The SST engine
// gets the profile's small memtable so the dataset flushes into many
// runs; durable engines run with fsync disabled — the profile measures
// the read path, not group commit.
func openBigDataEngine(engine, dir string) (store.Engine, error) {
	switch engine {
	case "", "memory":
		return store.NewMemoryEngine(0), nil
	case "wal":
		return wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	case "sst":
		return sst.Open(sst.Options{
			Dir: dir, Fsync: wal.FsyncNever,
			FlushBytes: bigDataFlushBytes,
		})
	default:
		return nil, fmt.Errorf("bench: unknown engine %q", engine)
	}
}

// RunBigData profiles each engine on the large dataset and returns one
// row per engine. A backend that finishes the profile with a recorded
// write-path failure fails the run — same discipline as the cluster
// sweep's health gate.
func RunBigData(engines []string, seed int64) ([]BigDataRow, error) {
	rows := make([]BigDataRow, 0, len(engines))
	for _, engine := range engines {
		row, err := runBigDataEngine(engine, seed)
		if err != nil {
			return rows, fmt.Errorf("big-data profile %s: %w", engine, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runBigDataEngine(engine string, seed int64) (BigDataRow, error) {
	dir, err := os.MkdirTemp("", "wren-bigdata-*")
	if err != nil {
		return BigDataRow{}, err
	}
	defer os.RemoveAll(dir)
	e, err := openBigDataEngine(engine, dir)
	if err != nil {
		return BigDataRow{}, err
	}
	defer e.Close()

	row := BigDataRow{
		Engine: engine, Keys: bigDataKeys, ValueBytes: bigDataValueBytes,
	}
	if engine == "sst" {
		row.FlushBytes = bigDataFlushBytes
	}

	// Load in batches; the SST engine flushes and compacts as it goes,
	// exactly as it would under a sustained write load.
	val := make([]byte, bigDataValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	batch := make([]store.KV, 0, 512)
	for i := 0; i < bigDataKeys; i++ {
		key := bigDataKey(i)
		row.DataBytes += int64(len(key) + bigDataValueBytes)
		// A dense index pins every key plus a pointer-sized entry.
		row.FullIndexEstBytes += int64(len(key) + 24)
		batch = append(batch, store.KV{Key: key, Version: &store.Version{
			Value: val, UT: hlc.Timestamp(1 + i), RDT: 1, TxID: uint64(i),
		}})
		if len(batch) == cap(batch) {
			e.PutBatch(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		e.PutBatch(batch)
	}
	if f, ok := e.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil {
			return row, err
		}
	}

	visible := func(*store.Version) bool { return true }
	rng := rand.New(rand.NewSource(seed))

	// Uniform negative lookups over a disjoint keyspace.
	start := time.Now()
	for i := 0; i < bigDataProbes; i++ {
		if v := e.ReadVisible(fmt.Sprintf("miss-%07d", rng.Intn(1<<20)), visible); v != nil {
			return row, fmt.Errorf("phantom version for absent key")
		}
	}
	row.UniformMissMicros = micros(time.Since(start), bigDataProbes)

	// Zipfian-skewed negative lookups: a few hot absent keys probed over
	// and over, the shape a read-through cache's misses take.
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	start = time.Now()
	for i := 0; i < bigDataProbes; i++ {
		if v := e.ReadVisible(fmt.Sprintf("miss-%07d", zipf.Uint64()), visible); v != nil {
			return row, fmt.Errorf("phantom version for absent key")
		}
	}
	row.ZipfMissMicros = micros(time.Since(start), bigDataProbes)

	// Uniform present-key point reads.
	start = time.Now()
	for i := 0; i < bigDataProbes; i++ {
		if v := e.ReadVisible(bigDataKey(rng.Intn(bigDataKeys)), visible); v == nil {
			return row, fmt.Errorf("loaded key missing")
		}
	}
	row.PointReadMicros = micros(time.Since(start), bigDataProbes)

	if lsm, ok := e.(lsmIntrospect); ok {
		row.Runs = lsm.Runs()
		row.Levels = lsm.Levels()
		row.ResidentIndexBytes = lsm.ResidentIndexBytes()
	}
	if err := e.Healthy(); err != nil {
		row.Healthy = false
		return row, fmt.Errorf("engine finished the profile degraded: %w", err)
	}
	row.Healthy = true
	return row, nil
}

func bigDataKey(i int) string { return fmt.Sprintf("bigdata-%07d", i) }

func micros(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / float64(n)
}
