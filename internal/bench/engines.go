package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// The storage-engine sweep compares every backend — the in-memory
// lock-striped engine, the per-shard WAL engine and the memtable+SST
// engine — on the same Wren cluster under a read-heavy and a write-heavy
// mix, so every PR that touches a backend leaves a comparable
// apples-to-apples trajectory (BENCH_engines.json, uploaded as a CI
// artifact by bench-smoke). Each cluster's engines must also finish the
// run healthy: a backend that silently froze a shard log mid-benchmark
// fails the sweep instead of publishing numbers measured on a degraded
// write path.

// EngineWorkloads are the mixes the engine sweep runs: the paper's
// read-heavy default and a write-heavy mix where the durable engines'
// append cost dominates.
var EngineWorkloads = []ycsb.Mix{ycsb.Mix95, ycsb.Mix50}

// EngineRow is one measured cell of the storage-engine sweep.
type EngineRow struct {
	Engine       string  `json:"engine"`        // "memory", "wal", "sst"
	Workload     string  `json:"workload"`      // "95:5", "50:50"
	Threads      int     `json:"threads"`       // client goroutines per (DC, partition)
	TotalThreads int     `json:"total_threads"` // across the whole cluster
	TxPerSec     float64 `json:"tx_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"` // individual key writes/s
	MeanLatMs    float64 `json:"mean_lat_ms"`
	P50LatMs     float64 `json:"p50_lat_ms"`
	P99LatMs     float64 `json:"p99_lat_ms"`
	Committed    uint64  `json:"committed"`
	Errors       uint64  `json:"errors"`
}

// EnginesReport is the machine-readable output of the engine sweep.
type EnginesReport struct {
	Protocol   string      `json:"protocol"`
	Fsync      string      `json:"fsync"` // policy the durable engines ran with
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	DCs        int         `json:"dcs"`
	Partitions int         `json:"partitions"`
	Rows       []EngineRow `json:"rows"`
	// BigData is the direct-engine large-dataset profile: run counts,
	// resident index bytes and negative-lookup latencies on a dataset
	// far larger than the SST memtable.
	BigData []BigDataRow `json:"big_data,omitempty"`
}

// RunEngines sweeps the given storage engines across EngineWorkloads and
// thread counts on a Wren cluster (one fresh cluster, with a fresh data
// directory, per engine × mix). After each cluster's load points it
// verifies every server engine is still healthy and fails otherwise. On
// failure the report accumulated so far is returned alongside the error,
// so callers can still persist the rows that DID complete — the failing
// run's partial artifact is the evidence of where the sweep stopped.
func RunEngines(o Options, engines []string, threads []int) (*EnginesReport, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("bench: no engines to sweep")
	}
	if len(threads) == 0 {
		threads = []int{1, 4}
	}
	fsync := o.FsyncPolicy
	if fsync == "" {
		fsync = "interval"
	}
	rep := &EnginesReport{
		Protocol:   cluster.Wren.String(),
		Fsync:      fsync,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		DCs:        o.DCs,
		Partitions: o.Partitions,
	}
	for _, engine := range engines {
		for _, mix := range EngineWorkloads {
			eo := o
			eo.StoreBackend = engine
			cl, err := cluster.New(eo.clusterConfig(cluster.Wren, o.DCs, o.Partitions))
			if err != nil {
				return rep, fmt.Errorf("engine %s: %w", engine, err)
			}
			pTx := 4
			if pTx > o.Partitions {
				pTx = o.Partitions
			}
			w, err := ycsb.NewWorkload(o.workloadConfig(mix, pTx, o.Partitions))
			if err != nil {
				cl.Close()
				return rep, err
			}
			if err := Preload(cl, w); err != nil {
				cl.Close()
				return rep, err
			}
			for _, t := range threads {
				res, err := RunLoadPoint(LoadConfig{
					Cluster: cl, Workload: w, ThreadsPerClient: t,
					Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
				})
				if err != nil {
					cl.Close()
					return rep, fmt.Errorf("engine %s %s x%d: %w", engine, mix.Name(), t, err)
				}
				rep.Rows = append(rep.Rows, EngineRow{
					Engine:       backendLabel(engine),
					Workload:     mix.Name(),
					Threads:      t,
					TotalThreads: res.Threads,
					TxPerSec:     res.Throughput,
					WritesPerSec: res.Throughput * float64(mix.Writes),
					MeanLatMs:    res.MeanLatMs,
					P50LatMs:     res.P50LatMs,
					P99LatMs:     res.P99LatMs,
					Committed:    res.Committed,
					Errors:       res.Errors,
				})
			}
			// The health gate: numbers measured on a degraded write path
			// (a frozen shard log, a failed flush) must not be published.
			herr := cl.EnginesHealthy()
			cl.Close()
			if herr != nil {
				return rep, fmt.Errorf("engine %s finished the %s sweep degraded: %w", engine, mix.Name(), herr)
			}
		}
	}
	// The large-dataset profile rides along on the same report: every
	// swept engine is sized against a dataset many times the SST
	// memtable, and a backend that ends the profile degraded fails the
	// sweep just like the cluster health gate above.
	big, err := RunBigData(engines, o.Seed)
	rep.BigData = big
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// WriteJSON serializes the report, indented for diffable commits.
func (r *EnginesReport) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatEngines renders the report for humans.
func FormatEngines(r *EnginesReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage engines (%s, fsync=%s, GOMAXPROCS=%d, %dx%d)\n",
		r.Protocol, r.Fsync, r.GoMaxProcs, r.DCs, r.Partitions)
	fmt.Fprintf(&b, "%-8s %-8s %8s %12s %12s %10s %10s %10s\n",
		"engine", "mix", "threads", "tx/s", "writes/s", "mean(ms)", "p50(ms)", "p99(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %-8s %8d %12.0f %12.0f %10.2f %10.2f %10.2f\n",
			row.Engine, row.Workload, row.TotalThreads, row.TxPerSec, row.WritesPerSec,
			row.MeanLatMs, row.P50LatMs, row.P99LatMs)
	}
	if len(r.BigData) > 0 {
		fmt.Fprintf(&b, "Big-data profile (%d keys x %dB values)\n",
			r.BigData[0].Keys, r.BigData[0].ValueBytes)
		fmt.Fprintf(&b, "%-8s %6s %7s %14s %14s %12s %12s %12s\n",
			"engine", "runs", "levels", "resident(B)", "full-idx(B)",
			"miss-uni(us)", "miss-zipf(us)", "read(us)")
		for _, row := range r.BigData {
			fmt.Fprintf(&b, "%-8s %6d %7d %14d %14d %12.2f %12.2f %12.2f\n",
				row.Engine, row.Runs, row.Levels, row.ResidentIndexBytes,
				row.FullIndexEstBytes, row.UniformMissMicros, row.ZipfMissMicros,
				row.PointReadMicros)
		}
	}
	return b.String()
}
