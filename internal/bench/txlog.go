package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"wren/internal/cluster"
	"wren/internal/stats"
)

// The txlog sweep prices the commit-record log: with it, every 2PC writes
// PREPARE records at the cohorts and a COMMIT decision at the coordinator
// BEFORE the client is acknowledged, so commit (ack) latency now carries
// the logging cost — one fsync on the ack path under fsync=always, an
// append otherwise. The sweep runs the same write-only closed loop with
// commit logging on and off under every fsync policy and reports ack
// latency percentiles, leaving BENCH_txlog.json as the standing record of
// what the acknowledged-transaction durability unit costs (uploaded as a
// CI artifact by bench-smoke).

// TxLogRow is one measured cell of the sweep.
type TxLogRow struct {
	Fsync string `json:"fsync"`
	TxLog bool   `json:"txlog"`
	// DecisionBatch reports whether the fsync=always coordinator-decision
	// group commit was active: commit-decision records of concurrent 2PCs
	// coalesced into one write+fsync instead of one fsync each. Only
	// meaningful on fsync=always rows with the log on; the sweep runs that
	// cell twice, batching off then on, so the pair prices the
	// optimization.
	DecisionBatch bool    `json:"decision_batch"`
	Threads       int     `json:"threads"`
	Commits       uint64  `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	AckMeanMs     float64 `json:"ack_mean_ms"`
	AckP50Ms      float64 `json:"ack_p50_ms"`
	AckP99Ms      float64 `json:"ack_p99_ms"`
	Errors        uint64  `json:"errors"`
}

// TxLogReport is the machine-readable output of the sweep.
type TxLogReport struct {
	Protocol   string     `json:"protocol"`
	Backend    string     `json:"backend"`
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	DCs        int        `json:"dcs"`
	Partitions int        `json:"partitions"`
	Rows       []TxLogRow `json:"rows"`
}

// TxLogFsyncPolicies are the policies the sweep covers.
var TxLogFsyncPolicies = []string{"always", "interval", "never"}

// RunTxLog measures commit-acknowledgement latency with the transaction
// log on vs off, per fsync policy, on a Wren cluster over the wal backend.
// Each cell gets a fresh cluster and data directory; clients run a
// write-only closed loop (two keys per transaction, so most commits are
// multi-cohort 2PCs) and time the Commit call alone — the client-observed
// ack latency the commit-record log taxes.
func RunTxLog(o Options) (*TxLogReport, error) {
	backendName := o.StoreBackend
	if backendName == "" || backendName == "memory" {
		backendName = "wal" // the log needs a durable backend underneath
	}
	rep := &TxLogReport{
		Protocol:   cluster.Wren.String(),
		Backend:    backendName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		DCs:        1,
		Partitions: min(o.Partitions, 4),
	}
	threads := o.FixedThreads
	if threads <= 0 {
		threads = 2
	}
	for _, fsync := range TxLogFsyncPolicies {
		for _, withLog := range []bool{false, true} {
			// Decision batching only changes behaviour on the ack-path
			// fsync cell; run that one before/after so the pair prices it.
			variants := []bool{true}
			if withLog && fsync == "always" {
				variants = []bool{false, true}
			}
			for _, batch := range variants {
				row, err := runTxLogCell(o, rep.Partitions, backendName, fsync, withLog, batch, threads)
				if err != nil {
					return rep, fmt.Errorf("txlog sweep (%s, txlog=%v, batch=%v): %w", fsync, withLog, batch, err)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

func runTxLogCell(o Options, partitions int, backendName, fsync string, withLog, batch bool, threads int) (TxLogRow, error) {
	eo := o
	eo.StoreBackend = backendName
	eo.FsyncPolicy = fsync
	cfg := eo.clusterConfig(cluster.Wren, 1, partitions)
	cfg.DisableTxLog = !withLog
	cfg.DisableDecisionBatch = !batch
	cl, err := cluster.New(cfg)
	if err != nil {
		return TxLogRow{}, err
	}
	defer cl.Close()

	var (
		hist      = stats.NewHistogram()
		committed stats.Counter
		errCount  stats.Counter
		measuring sync.WaitGroup
		stop      = make(chan struct{})
		errCh     = make(chan error, threads)
	)
	start := make(chan struct{})
	for th := 0; th < threads; th++ {
		measuring.Add(1)
		go func(th int) {
			defer measuring.Done()
			client, err := cl.NewClient(0, th%partitions)
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			<-start
			var measure bool
			warmupEnd := time.Now().Add(o.Warmup)
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !measure && time.Now().After(warmupEnd) {
					measure = true
				}
				tx, err := client.Begin()
				if err != nil {
					errCount.Inc()
					continue
				}
				k1 := fmt.Sprintf("txlog-%d-%d-a", th, i%o.KeysPerPartition)
				k2 := fmt.Sprintf("txlog-%d-%d-b", th, i%o.KeysPerPartition)
				i++
				if err := tx.Write(k1, []byte("x")); err != nil {
					errCount.Inc()
					_ = tx.Abort()
					continue
				}
				if err := tx.Write(k2, []byte("y")); err != nil {
					errCount.Inc()
					_ = tx.Abort()
					continue
				}
				t0 := time.Now()
				if _, err := tx.Commit(); err != nil {
					errCount.Inc()
					continue
				}
				if measure {
					hist.RecordDuration(time.Since(t0))
					committed.Inc()
				}
			}
		}(th)
	}
	close(start)
	time.Sleep(o.Warmup + o.Measure)
	close(stop)
	measuring.Wait()
	select {
	case err := <-errCh:
		return TxLogRow{}, err
	default:
	}
	if err := cl.Healthy(); err != nil {
		return TxLogRow{}, fmt.Errorf("cluster finished degraded: %w", err)
	}
	secs := o.Measure.Seconds()
	return TxLogRow{
		Fsync:         fsync,
		TxLog:         withLog,
		DecisionBatch: withLog && fsync == "always" && batch,
		Threads:       threads,
		Commits:       committed.Load(),
		CommitsPerSec: float64(committed.Load()) / secs,
		AckMeanMs:     hist.Mean() / 1000,
		AckP50Ms:      float64(hist.Percentile(50)) / 1000,
		AckP99Ms:      float64(hist.Percentile(99)) / 1000,
		Errors:        errCount.Load(),
	}, nil
}

// WriteJSON serializes the report, indented for diffable commits.
func (r *TxLogReport) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatTxLog renders the report for humans.
func FormatTxLog(r *TxLogReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Commit-ack latency: transaction log on vs off (%s/%s, GOMAXPROCS=%d, %dx%d, %d threads)\n",
		r.Protocol, r.Backend, r.GoMaxProcs, r.DCs, r.Partitions, rowThreads(r))
	fmt.Fprintf(&b, "%-10s %-6s %-9s %12s %12s %12s %12s\n",
		"fsync", "txlog", "decbatch", "commits/s", "mean(ms)", "p50(ms)", "p99(ms)")
	for _, row := range r.Rows {
		on := "off"
		if row.TxLog {
			on = "on"
		}
		batch := "-"
		if row.TxLog && row.Fsync == "always" {
			batch = "off"
			if row.DecisionBatch {
				batch = "on"
			}
		}
		fmt.Fprintf(&b, "%-10s %-6s %-9s %12.0f %12.3f %12.3f %12.3f\n",
			row.Fsync, on, batch, row.CommitsPerSec, row.AckMeanMs, row.AckP50Ms, row.AckP99Ms)
	}
	return b.String()
}

func rowThreads(r *TxLogReport) int {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[0].Threads
}
