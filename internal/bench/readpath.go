package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// The read-path benchmark suite measures the cost of Wren's headline
// operation — the nonblocking transactional read — in isolation and under
// write interference, and verifies structurally (via the runtime mutex
// profile) that the read handlers never contend on a server-wide mutex.
//
// Three workloads bracket the read path: reads-only (nothing but the read
// path), 95:5 (the paper's default) and 50:50 (heavy write interference,
// where a read path that shares locks with the commit/apply pipeline
// collapses). Each is swept across client-goroutine counts; wren-bench
// serializes the report to BENCH_read_path.json so successive PRs leave a
// comparable perf trajectory.

// ReadPathWorkloads are the mixes the suite sweeps.
var ReadPathWorkloads = []ycsb.Mix{ycsb.Mix100, ycsb.Mix95, ycsb.Mix50}

// ReadPathRow is one measured load point of the read-path suite.
type ReadPathRow struct {
	Workload     string  `json:"workload"`      // "100:0", "95:5", "50:50"
	Threads      int     `json:"threads"`       // client goroutines per (DC, partition)
	TotalThreads int     `json:"total_threads"` // across the whole cluster
	TxPerSec     float64 `json:"tx_per_sec"`    // committed transactions/s
	ReadsPerSec  float64 `json:"reads_per_sec"` // individual key reads/s
	MeanLatMs    float64 `json:"mean_lat_ms"`
	P50LatMs     float64 `json:"p50_lat_ms"`
	P99LatMs     float64 `json:"p99_lat_ms"`
	Committed    uint64  `json:"committed"`
	Errors       uint64  `json:"errors"`
}

// MutexReport summarizes the runtime mutex profile captured across the
// suite. ReadPathSamples counts contention events on a plain sync.Mutex
// inside the server read handlers (handleStartTx, handleTxRead,
// handleSliceReq, readSlice) — the footprint of the old design, where every
// read serialized on the server-wide mutex. It must be zero: the read path
// owns no plain mutex at all. Two contention sources are excluded
// deliberately because they are not server-wide: striped RWMutexes (store
// shards, request maps — per-stripe, and read-locks only contend with
// writers) and the transport's own per-link locks (the in-memory link
// queue under s.send, which any handler — old or new design — pays).
type MutexReport struct {
	CyclesPerSecond   int64   `json:"cycles_per_second"`
	TotalSamples      int     `json:"total_samples"`
	ReadPathSamples   int     `json:"read_path_mutex_samples"`
	ReadPathDelayMs   float64 `json:"read_path_mutex_delay_ms"`
	ReadPathFootprint string  `json:"read_path_footprint,omitempty"` // first offending stack, for diagnosis
}

// Clean reports whether the read path showed zero server-wide mutex
// contention.
func (m *MutexReport) Clean() bool { return m.ReadPathSamples == 0 }

// ReadPathReport is the machine-readable output of the suite.
type ReadPathReport struct {
	Protocol   string        `json:"protocol"`
	Backend    string        `json:"backend"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	DCs        int           `json:"dcs"`
	Partitions int           `json:"partitions"`
	Rows       []ReadPathRow `json:"rows"`
	Mutex      MutexReport   `json:"mutex"`
}

// RunReadPath sweeps the read-path workloads across the given goroutine
// counts on a Wren cluster, capturing the mutex profile for the whole
// suite. The profile sampling fraction is restored on return.
func RunReadPath(o Options, threads []int) (*ReadPathReport, error) {
	if len(threads) == 0 {
		threads = []int{1, 4, 8, 16}
	}
	rep := &ReadPathReport{
		Protocol:   cluster.Wren.String(),
		Backend:    backendLabel(o.StoreBackend),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		DCs:        o.DCs,
		Partitions: o.Partitions,
	}

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	for _, mix := range ReadPathWorkloads {
		cl, err := cluster.New(o.clusterConfig(cluster.Wren, o.DCs, o.Partitions))
		if err != nil {
			return nil, err
		}
		pTx := 4
		if pTx > o.Partitions {
			pTx = o.Partitions
		}
		w, err := ycsb.NewWorkload(o.workloadConfig(mix, pTx, o.Partitions))
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := Preload(cl, w); err != nil {
			cl.Close()
			return nil, err
		}
		for _, t := range threads {
			res, err := RunLoadPoint(LoadConfig{
				Cluster: cl, Workload: w, ThreadsPerClient: t,
				Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
			})
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("read-path %s x%d: %w", mix.Name(), t, err)
			}
			rep.Rows = append(rep.Rows, ReadPathRow{
				Workload:     mix.Name(),
				Threads:      t,
				TotalThreads: res.Threads,
				TxPerSec:     res.Throughput,
				ReadsPerSec:  res.Throughput * float64(mix.Reads),
				MeanLatMs:    res.MeanLatMs,
				P50LatMs:     res.P50LatMs,
				P99LatMs:     res.P99LatMs,
				Committed:    res.Committed,
				Errors:       res.Errors,
			})
		}
		cl.Close()
	}

	mr, err := CaptureMutexProfile()
	if err != nil {
		return nil, err
	}
	rep.Mutex = *mr
	return rep, nil
}

func backendLabel(b string) string {
	if b == "" {
		return "memory"
	}
	return b
}

// readPathFrames are the server read-handler functions a contention sample
// must pass through to count against the read path.
var readPathFrames = []string{
	"core.(*Server).handleStartTx",
	"core.(*Server).handleTxRead",
	"core.(*Server).handleSliceReq",
	"core.(*Server).readSlice",
}

// CaptureMutexProfile snapshots the runtime mutex profile (debug=1 text
// form) and classifies its samples. A sample counts against the read path
// when its stack passes through a read handler AND unlocks a plain
// sync.Mutex (not the read side or writer path of a striped RWMutex).
func CaptureMutexProfile() (*MutexReport, error) {
	p := pprof.Lookup("mutex")
	if p == nil {
		return nil, fmt.Errorf("bench: mutex profile unavailable")
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return nil, fmt.Errorf("bench: write mutex profile: %w", err)
	}
	return ParseMutexProfile(buf.String()), nil
}

// ParseMutexProfile classifies a debug=1 mutex profile dump. Exposed for
// tests.
func ParseMutexProfile(text string) *MutexReport {
	rep := &MutexReport{}
	var (
		curCycles   int64
		curFrames   []string
		haveSample  bool
		flushSample func()
	)
	flushSample = func() {
		if !haveSample {
			return
		}
		rep.TotalSamples++
		plainMutex := false
		rwMutex := false
		handlerIdx := -1
		for i, f := range curFrames {
			if strings.Contains(f, "sync.(*Mutex).Unlock") {
				plainMutex = true
			}
			if strings.Contains(f, "sync.(*RWMutex)") {
				rwMutex = true
			}
			if handlerIdx < 0 {
				for _, rf := range readPathFrames {
					if strings.Contains(f, rf) {
						handlerIdx = i
						break
					}
				}
			}
		}
		// The messaging substrate's own locks (the in-memory link queue,
		// TCP writers) sit under s.send INSIDE the handlers; they are
		// per-link, not server-wide, and not what this gate polices. But
		// every handler also RUNS on a transport delivery goroutine, so
		// transport frames rootward of the handler must not exonerate a
		// sample — only a transport frame leafward of the handler (frames
		// are listed leaf-first) means the contended lock itself lives in
		// the transport.
		transportOwned := false
		for i := 0; i < handlerIdx; i++ {
			if strings.Contains(curFrames[i], "internal/transport") {
				transportOwned = true
				break
			}
		}
		if handlerIdx >= 0 && plainMutex && !rwMutex && !transportOwned {
			rep.ReadPathSamples++
			if rep.CyclesPerSecond > 0 {
				rep.ReadPathDelayMs += float64(curCycles) / float64(rep.CyclesPerSecond) * 1000
			}
			if rep.ReadPathFootprint == "" {
				rep.ReadPathFootprint = strings.Join(curFrames, " <- ")
			}
		}
		haveSample = false
		curFrames = nil
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "cycles/second="); ok {
			rep.CyclesPerSecond, _ = strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Frame line: "#\t0xADDR\tsymbol+0xOFF\tfile:line".
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				sym := fields[2]
				if i := strings.LastIndex(sym, "+0x"); i > 0 {
					sym = sym[:i]
				}
				curFrames = append(curFrames, sym)
			}
			continue
		}
		// Sample header: "CYCLES COUNT @ 0x... 0x...".
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[2] == "@" {
			flushSample()
			curCycles, _ = strconv.ParseInt(fields[0], 10, 64)
			haveSample = true
		}
	}
	flushSample()
	return rep
}

// WriteJSON serializes the report, indented for diffable commits.
func (r *ReadPathReport) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatReadPath renders the report for humans.
func FormatReadPath(r *ReadPathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Read path (%s, %s backend, GOMAXPROCS=%d)\n", r.Protocol, r.Backend, r.GoMaxProcs)
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s %10s %10s\n",
		"mix", "threads", "tx/s", "reads/s", "mean(ms)", "p50(ms)", "p99(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %8d %12.0f %12.0f %10.2f %10.2f %10.2f\n",
			row.Workload, row.TotalThreads, row.TxPerSec, row.ReadsPerSec,
			row.MeanLatMs, row.P50LatMs, row.P99LatMs)
	}
	fmt.Fprintf(&b, "mutex profile: %d samples total, %d on the read path",
		r.Mutex.TotalSamples, r.Mutex.ReadPathSamples)
	if r.Mutex.Clean() {
		fmt.Fprintf(&b, " (clean: no server-wide mutex in read handlers)\n")
	} else {
		fmt.Fprintf(&b, " (CONTENDED: %.2fms waited; first stack: %s)\n",
			r.Mutex.ReadPathDelayMs, r.Mutex.ReadPathFootprint)
	}
	return b.String()
}
