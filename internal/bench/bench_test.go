package bench

import (
	"testing"
	"time"

	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	o := SmokeOptions()
	o.DCs = 2
	o.Partitions = 2
	o.Threads = []int{1}
	o.FixedThreads = 1
	o.Warmup = 100 * time.Millisecond
	o.Measure = 400 * time.Millisecond
	o.KeysPerPartition = 50
	o.ApplyInterval = time.Millisecond
	o.GossipInterval = time.Millisecond
	o.InterDCLatency = 2 * time.Millisecond
	return o
}

func TestPreloadAndLoadPoint(t *testing.T) {
	o := tinyOptions()
	for _, proto := range []cluster.Protocol{cluster.Wren, cluster.Cure} {
		t.Run(proto.String(), func(t *testing.T) {
			cl, err := cluster.New(o.clusterConfig(proto, o.DCs, o.Partitions))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			w, err := ycsb.NewWorkload(o.workloadConfig(ycsb.Mix95, 2, o.Partitions))
			if err != nil {
				t.Fatal(err)
			}
			if err := Preload(cl, w); err != nil {
				t.Fatal(err)
			}
			res, err := RunLoadPoint(LoadConfig{
				Cluster: cl, Workload: w, ThreadsPerClient: 1,
				Warmup: o.Warmup, Measure: o.Measure, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed")
			}
			if res.Throughput <= 0 {
				t.Fatal("throughput should be positive")
			}
			if res.MeanLatMs <= 0 {
				t.Fatal("latency should be positive")
			}
			if res.Errors > 0 {
				t.Fatalf("%d errors during load", res.Errors)
			}
			if res.Protocol != proto.String() {
				t.Fatalf("protocol label %q", res.Protocol)
			}
			// Traffic counters must be live.
			if res.StabBytes == 0 {
				t.Error("no stabilization traffic recorded")
			}
			if res.ReplInterBytes == 0 {
				t.Error("no replication traffic recorded")
			}
		})
	}
}

func TestWrenNeverBlocksCureMay(t *testing.T) {
	o := tinyOptions()
	series, err := SweepProtocols(o, ycsb.Mix95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("expected 3 series, got %d", len(series))
	}
	for _, s := range series {
		if s.Protocol == "Wren" {
			for _, p := range s.Points {
				if p.BlockedShare != 0 {
					t.Errorf("Wren reported blocked transactions: %f", p.BlockedShare)
				}
			}
		}
	}
	out := FormatSeries("smoke", series)
	if len(out) == 0 {
		t.Error("empty formatting")
	}
}

func TestRatioCells(t *testing.T) {
	o := tinyOptions()
	cells, err := RunFig6a(o, []int{2}, []ycsb.Mix{ycsb.Mix95})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(cells))
	}
	c := cells[0]
	if c.WrenThroughput <= 0 || c.CureThroughput <= 0 || c.Ratio <= 0 {
		t.Fatalf("degenerate ratio cell: %+v", c)
	}
	if FormatRatios("t", cells) == "" {
		t.Error("empty formatting")
	}
}

func TestTrafficMeasurement(t *testing.T) {
	o := tinyOptions()
	res, err := RunFig7a(o, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("expected 2 results, got %d", len(res))
	}
	var wren, cure TrafficResult
	for _, r := range res {
		switch r.Protocol {
		case "Wren":
			wren = r
		case "Cure":
			cure = r
		}
	}
	if wren.ReplBytesPerTx <= 0 || cure.ReplBytesPerTx <= 0 {
		t.Fatalf("missing replication traffic: %+v", res)
	}
	// Even with only 2 DCs, Wren's constant 2-timestamp metadata must not
	// exceed Cure's vector-based metadata per transaction.
	if wren.ReplBytesPerTx > cure.ReplBytesPerTx*1.1 {
		t.Errorf("Wren repl bytes/tx (%.1f) exceed Cure's (%.1f)",
			wren.ReplBytesPerTx, cure.ReplBytesPerTx)
	}
	if FormatTraffic("t", res) == "" {
		t.Error("empty formatting")
	}
}

func TestVisibilityProbe(t *testing.T) {
	o := tinyOptions()
	res, err := RunVisibility(VisibilityConfig{
		Options:    o,
		Protocol:   cluster.Wren,
		ProbeEvery: 5 * time.Millisecond,
		Duration:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no visibility samples")
	}
	if len(res.LocalCDF) == 0 || len(res.RemoteCDF) == 0 {
		t.Fatal("missing CDFs")
	}
	// Remote visibility normally exceeds the WAN latency; under heavy CI
	// contention the prober can observe the update late enough that the
	// measured latency shrinks, so treat this as informational only.
	if res.RemoteCDF[0].Value < o.InterDCLatency.Microseconds() {
		t.Logf("note: remote visibility %dµs below WAN latency (loaded host)", res.RemoteCDF[0].Value)
	}
	if FormatVisibility("t", []VisibilityResult{res}) == "" {
		t.Error("empty formatting")
	}
}
