package bench

import (
	"os"
	"strings"
	"testing"
	"time"
)

// durableBackendOverride reports the non-default storage backend the suite
// was forced onto via WREN_STORE_BACKEND (CI's WAL job), or "". Latency-
// ordering assertions comparing sub-millisecond protocol deltas are
// skipped under a durable backend: fsync and page-cache noise on shared CI
// disks swamps the structural difference they measure.
func durableBackendOverride() string {
	if b := os.Getenv("WREN_STORE_BACKEND"); b != "" && b != "memory" {
		return b
	}
	return ""
}

func TestBlockingCommitAblation(t *testing.T) {
	o := tinyOptions()
	rows, err := RunBlockingCommitAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 variants, got %d", len(rows))
	}
	var cache, blocking AblationResult
	for _, r := range rows {
		if strings.Contains(r.Variant, "blocking") {
			blocking = r
		} else {
			cache = r
		}
	}
	if cache.Throughput <= 0 || blocking.Throughput <= 0 {
		t.Fatalf("degenerate results: %+v", rows)
	}
	// Blocking commits must cost latency: each commit waits for the local
	// stable snapshot to cover it (at least one apply + gossip round).
	if b := durableBackendOverride(); b != "" {
		t.Logf("latency-ordering assertion skipped under WREN_STORE_BACKEND=%s", b)
	} else if blocking.MeanLatMs <= cache.MeanLatMs {
		t.Errorf("blocking commits (%.2fms) should be slower than the client cache (%.2fms)",
			blocking.MeanLatMs, cache.MeanLatMs)
	}
	if FormatAblation("t", rows) == "" {
		t.Error("empty formatting")
	}
}

func TestGossipTopologyAblation(t *testing.T) {
	o := tinyOptions()
	o.Partitions = 4 // enough partitions for the tree to matter
	rows, err := RunGossipTopologyAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 variants, got %d", len(rows))
	}
	var broadcast, tree AblationResult
	for _, r := range rows {
		if strings.Contains(r.Variant, "tree") {
			tree = r
		} else {
			broadcast = r
		}
	}
	// The tree topology must move fewer stabilization bytes: 2(N-1) vs
	// N(N-1) messages per round.
	if tree.StabBytesPS >= broadcast.StabBytesPS {
		t.Errorf("tree stabilization (%.0f B/s) should be below broadcast (%.0f B/s)",
			tree.StabBytesPS, broadcast.StabBytesPS)
	}
}

func TestSnapshotAgeAblation(t *testing.T) {
	o := tinyOptions()
	o.Measure = 600 * time.Millisecond
	// Wren's snapshot age is ΔR (apply) plus a BiST round (ΔG); Cure's is
	// only ΔR at the origin partition. With ΔG == ΔR the tickers, all
	// started together, fire in near-lockstep and the extra gossip hop
	// costs mere scheduling noise — the ordering assertion below would
	// then compare sub-tick minutiae. Spreading the periods makes the
	// structural difference dominate the measurement.
	o.GossipInterval = 4 * o.ApplyInterval
	rows, err := RunSnapshotAgeAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	// Wren's snapshots are older than Cure's: its local visibility
	// latency (snapshot age) must be at least Cure's.
	var wrenAge, cureAge float64
	for _, r := range rows {
		switch r.Variant {
		case "Wren":
			wrenAge = r.ExtraValue
		case "Cure":
			cureAge = r.ExtraValue
		}
	}
	if wrenAge <= 0 || cureAge <= 0 {
		t.Fatalf("missing visibility measurements: %+v", rows)
	}
	if wrenAge < cureAge {
		t.Errorf("Wren local visibility (%.2fms) should not beat Cure's (%.2fms): older snapshots are the trade-off",
			wrenAge, cureAge)
	}
}

func TestGossipIntervalAblation(t *testing.T) {
	o := tinyOptions()
	o.Measure = 600 * time.Millisecond
	rows, err := RunGossipIntervalAblation(o, []time.Duration{
		time.Millisecond, 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	fast, slow := rows[0], rows[1]
	// A longer gossip period must reduce stabilization traffic...
	if slow.StabBytesPS >= fast.StabBytesPS {
		t.Errorf("ΔG=8ms traffic (%.0f B/s) should be below ΔG=1ms (%.0f B/s)",
			slow.StabBytesPS, fast.StabBytesPS)
	}
	// ...and increase local visibility latency.
	if slow.ExtraValue < fast.ExtraValue {
		t.Errorf("ΔG=8ms visibility (%.2fms) should not beat ΔG=1ms (%.2fms)",
			slow.ExtraValue, fast.ExtraValue)
	}
}
