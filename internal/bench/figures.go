package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// Options scales every figure runner between "smoke test" (bench_test.go)
// and "full sweep" (cmd/wren-bench).
type Options struct {
	// DCs and Partitions define the default topology (paper default:
	// 3 DCs, 8 partitions).
	DCs        int
	Partitions int
	// Threads are the per-client-process thread counts swept for the
	// latency-throughput figures (paper: 1, 2, 4, 8, 16).
	Threads []int
	// FixedThreads is the single thread count used by the ratio figures
	// (6a, 6b, 7a) and the visibility figure (7b).
	FixedThreads int
	// Warmup and Measure bound each load point.
	Warmup  time.Duration
	Measure time.Duration
	// KeysPerPartition sizes the keyspace.
	KeysPerPartition int
	// ClockSkew is the maximum simulated NTP offset.
	ClockSkew time.Duration
	// ApplyInterval and GossipInterval are the protocol timers (ΔR, ΔG);
	// the paper runs both every 5ms.
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	// InterDCLatency is the uniform WAN latency for throughput figures.
	InterDCLatency time.Duration
	// StoreShards is the lock-stripe count of each server's version store
	// (0 = store default).
	StoreShards int
	// StoreBackend selects the servers' storage engine ("" or "memory",
	// "wal" for the durable per-shard log engine, "sst" for the
	// memtable+sorted-run engine).
	StoreBackend string
	// DataDir is the root data directory for durable backends; every
	// cluster a run builds gets its own cluster-<n> subdirectory so no
	// load point recovers a previous one's data. Empty selects a
	// per-cluster temp dir removed when the cluster closes.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy (always, interval, never).
	FsyncPolicy string
	// Seed fixes randomness for reproducibility.
	Seed int64
}

// DefaultOptions mirrors the paper's configuration, scaled to run on a
// single machine.
func DefaultOptions() Options {
	return Options{
		DCs:              3,
		Partitions:       8,
		Threads:          []int{1, 2, 4, 8, 16},
		FixedThreads:     4,
		Warmup:           time.Second,
		Measure:          4 * time.Second,
		KeysPerPartition: 1000,
		ClockSkew:        2 * time.Millisecond,
		ApplyInterval:    5 * time.Millisecond,
		GossipInterval:   5 * time.Millisecond,
		InterDCLatency:   10 * time.Millisecond,
		Seed:             1,
	}
}

// SmokeOptions is a reduced configuration for quick regression runs.
func SmokeOptions() Options {
	o := DefaultOptions()
	o.Partitions = 4
	o.Threads = []int{1, 4}
	o.FixedThreads = 2
	o.Warmup = 300 * time.Millisecond
	o.Measure = 1500 * time.Millisecond
	o.KeysPerPartition = 200
	return o
}

// clusterSeq distinguishes the data directories of the many clusters one
// benchmark invocation builds; reusing a directory would make a later
// cluster recover an earlier one's versions and contaminate the numbers.
var clusterSeq atomic.Uint64

// freshDataDir carves an unused subdirectory out of the user-supplied
// data-dir root. MkdirTemp (not a bare counter) keeps repeated wren-bench
// invocations against the same root from recovering each other's state.
func freshDataDir(root string) string {
	if err := os.MkdirAll(root, 0o755); err == nil {
		if d, err := os.MkdirTemp(root, "cluster-*"); err == nil {
			return d
		}
	}
	// Fall back to a counter-named subdir; any real problem with the root
	// surfaces as a clear error when the WAL opens it.
	return filepath.Join(root, fmt.Sprintf("cluster-%04d", clusterSeq.Add(1)))
}

func (o Options) clusterConfig(proto cluster.Protocol, dcs, partitions int) cluster.Config {
	dataDir := o.DataDir
	if dataDir != "" {
		dataDir = freshDataDir(dataDir)
	}
	return cluster.Config{
		Protocol:       proto,
		NumDCs:         dcs,
		NumPartitions:  partitions,
		InterDCLatency: o.InterDCLatency,
		ClockSkew:      o.ClockSkew,
		ApplyInterval:  o.ApplyInterval,
		GossipInterval: o.GossipInterval,
		StoreShards:    o.StoreShards,
		StoreBackend:   o.StoreBackend,
		DataDir:        dataDir,
		FsyncPolicy:    o.FsyncPolicy,
		Seed:           o.Seed,
	}
}

func (o Options) workloadConfig(mix ycsb.Mix, partitionsPerTx, numPartitions int) ycsb.Config {
	return ycsb.Config{
		Mix:              mix,
		PartitionsPerTx:  partitionsPerTx,
		NumPartitions:    numPartitions,
		KeysPerPartition: o.KeysPerPartition,
		ZipfTheta:        0.99,
		ValueSize:        8,
	}
}

// Series is one protocol's curve in a latency-throughput figure.
type Series struct {
	Protocol string
	Points   []Result
}

// AllProtocols is the comparison set of the paper's evaluation.
var AllProtocols = []cluster.Protocol{cluster.Cure, cluster.HCure, cluster.Wren}

// SweepProtocols produces the latency-throughput curves behind Figures 3a,
// 4a, 4b, 5a and 5b: for each protocol, one fresh cluster swept across
// thread counts.
func SweepProtocols(o Options, mix ycsb.Mix, partitionsPerTx int) ([]Series, error) {
	var out []Series
	for _, proto := range AllProtocols {
		serie, err := sweepOne(o, proto, mix, partitionsPerTx, o.DCs, o.Partitions, o.Threads)
		if err != nil {
			return nil, fmt.Errorf("%v sweep: %w", proto, err)
		}
		out = append(out, serie)
	}
	return out, nil
}

func sweepOne(o Options, proto cluster.Protocol, mix ycsb.Mix, partitionsPerTx, dcs, partitions int, threads []int) (Series, error) {
	cl, err := cluster.New(o.clusterConfig(proto, dcs, partitions))
	if err != nil {
		return Series{}, err
	}
	defer cl.Close()
	w, err := ycsb.NewWorkload(o.workloadConfig(mix, partitionsPerTx, partitions))
	if err != nil {
		return Series{}, err
	}
	if err := Preload(cl, w); err != nil {
		return Series{}, err
	}
	serie := Series{Protocol: proto.String()}
	for _, t := range threads {
		res, err := RunLoadPoint(LoadConfig{
			Cluster: cl, Workload: w, ThreadsPerClient: t,
			Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
		})
		if err != nil {
			return Series{}, err
		}
		serie.Points = append(serie.Points, res)
	}
	return serie, nil
}

// RatioCell is one bar of Figures 6a/6b: Wren's throughput normalized to
// Cure's in the same configuration.
type RatioCell struct {
	Label          string  // e.g. "95:5 8P" or "90:10 5DC"
	WrenThroughput float64 // absolute, tx/s (the number atop each bar)
	CureThroughput float64
	Ratio          float64
}

// RunFig6a measures Wren's throughput normalized to Cure when scaling the
// number of partitions per DC (paper: 4, 8, 16 partitions; 3 DCs).
func RunFig6a(o Options, partitionCounts []int, mixes []ycsb.Mix) ([]RatioCell, error) {
	var out []RatioCell
	for _, mix := range mixes {
		for _, parts := range partitionCounts {
			pTx := 4
			if pTx > parts {
				pTx = parts
			}
			cell, err := ratioCell(o, mix, pTx, o.DCs, parts,
				fmt.Sprintf("%s %dP", mix.Name(), parts))
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// RunFig6b measures Wren's throughput normalized to Cure when scaling the
// number of DCs (paper: 3 and 5 DCs; 16 partitions).
func RunFig6b(o Options, dcCounts []int, partitions int, mixes []ycsb.Mix) ([]RatioCell, error) {
	var out []RatioCell
	for _, mix := range mixes {
		for _, dcs := range dcCounts {
			pTx := 4
			if pTx > partitions {
				pTx = partitions
			}
			cell, err := ratioCell(o, mix, pTx, dcs, partitions,
				fmt.Sprintf("%s %dDC", mix.Name(), dcs))
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func ratioCell(o Options, mix ycsb.Mix, pTx, dcs, partitions int, label string) (RatioCell, error) {
	threads := []int{o.FixedThreads}
	wrenSeries, err := sweepOne(o, cluster.Wren, mix, pTx, dcs, partitions, threads)
	if err != nil {
		return RatioCell{}, fmt.Errorf("wren %s: %w", label, err)
	}
	cureSeries, err := sweepOne(o, cluster.Cure, mix, pTx, dcs, partitions, threads)
	if err != nil {
		return RatioCell{}, fmt.Errorf("cure %s: %w", label, err)
	}
	cell := RatioCell{
		Label:          label,
		WrenThroughput: wrenSeries.Points[0].Throughput,
		CureThroughput: cureSeries.Points[0].Throughput,
	}
	if cell.CureThroughput > 0 {
		cell.Ratio = cell.WrenThroughput / cell.CureThroughput
	}
	return cell, nil
}

// TrafficResult is Figure 7a's measurement for one DC count: bytes moved by
// the replication and stabilization protocols, normalized per committed
// transaction (replication) and per second (stabilization).
type TrafficResult struct {
	DCs                int
	Protocol           string
	ReplBytesPerTx     float64
	StabBytesPerSecond float64
}

// RunFig7a measures replication and stabilization traffic for Wren and
// Cure (the paper reports Wren's bytes normalized w.r.t. Cure's: ~37% fewer
// replication bytes and ~60% fewer stabilization bytes at 5 DCs).
func RunFig7a(o Options, dcCounts []int) ([]TrafficResult, error) {
	var out []TrafficResult
	pTx := 4
	if pTx > o.Partitions {
		pTx = o.Partitions
	}
	for _, dcs := range dcCounts {
		for _, proto := range []cluster.Protocol{cluster.Wren, cluster.Cure} {
			serie, err := sweepOne(o, proto, ycsb.Mix95, pTx, dcs, o.Partitions,
				[]int{o.FixedThreads})
			if err != nil {
				return nil, fmt.Errorf("fig7a %v %dDC: %w", proto, dcs, err)
			}
			pt := serie.Points[0]
			tr := TrafficResult{DCs: dcs, Protocol: proto.String()}
			if pt.Committed > 0 {
				tr.ReplBytesPerTx = float64(pt.ReplInterBytes) / float64(pt.Committed)
			}
			tr.StabBytesPerSecond = float64(pt.StabBytes) / pt.WindowSeconds
			out = append(out, tr)
		}
	}
	return out, nil
}

// FormatSeries renders latency-throughput series the way the paper plots
// them (one line per load point, grouped by protocol).
func FormatSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %8s %12s %10s %10s %10s %9s %9s\n",
		"proto", "threads", "tx/s", "mean(ms)", "p50(ms)", "p99(ms)", "blocked%", "blkms")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-8s %8d %12.0f %10.2f %10.2f %10.2f %9.1f %9.2f\n",
				s.Protocol, p.Threads, p.Throughput, p.MeanLatMs, p.P50LatMs, p.P99LatMs,
				p.BlockedShare*100, p.MeanBlockMs)
		}
	}
	return b.String()
}

// FormatRatios renders Figure 6-style normalized throughput bars.
func FormatRatios(title string, cells []RatioCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %14s %8s\n", "config", "wren(tx/s)", "cure(tx/s)", "ratio")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %8.2f\n",
			c.Label, c.WrenThroughput, c.CureThroughput, c.Ratio)
	}
	return b.String()
}

// FormatTraffic renders Figure 7a-style traffic numbers including the
// Wren/Cure ratio per DC count.
func FormatTraffic(title string, results []TrafficResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-8s %16s %16s\n", "DCs", "proto", "repl B/tx", "stab B/s")
	byDC := map[int]map[string]TrafficResult{}
	for _, r := range results {
		fmt.Fprintf(&b, "%-5d %-8s %16.1f %16.0f\n",
			r.DCs, r.Protocol, r.ReplBytesPerTx, r.StabBytesPerSecond)
		if byDC[r.DCs] == nil {
			byDC[r.DCs] = map[string]TrafficResult{}
		}
		byDC[r.DCs][r.Protocol] = r
	}
	for dcs, m := range byDC {
		w, okW := m["Wren"]
		c, okC := m["Cure"]
		if okW && okC && c.ReplBytesPerTx > 0 && c.StabBytesPerSecond > 0 {
			fmt.Fprintf(&b, "%dDC normalized (Wren/Cure): repl %.2f, stab %.2f\n",
				dcs, w.ReplBytesPerTx/c.ReplBytesPerTx, w.StabBytesPerSecond/c.StabBytesPerSecond)
		}
	}
	return b.String()
}
