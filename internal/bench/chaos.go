package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"wren/internal/cluster"
	"wren/internal/transport/chaos"
	"wren/internal/ycsb"
)

// The chaos sweep prices the partition-tolerance machinery: the same
// closed-loop YCSB mix on a small Wren memory cluster, once per
// client-link loss level, with the chaos transport dropping and
// duplicating client frames and the clients recovering through the
// bounded retry policy. The zero-loss row is the control: it runs through
// the same chaos wrapper (rule installed, probability zero), so any
// overhead of the wrapper itself is inside the baseline and the other
// rows isolate the cost of loss alone. CI uploads BENCH_chaos.json so
// successive PRs leave a comparable resilience trajectory.

// ChaosPoints are the default client-link loss probabilities swept.
var ChaosPoints = []float64{0, 0.01, 0.05}

// ChaosRow is one measured loss level.
type ChaosRow struct {
	LossPct    float64 `json:"loss_pct"` // drop AND duplicate probability, percent
	TxPerSec   float64 `json:"tx_per_sec"`
	MeanLatMs  float64 `json:"mean_lat_ms"`
	P50LatMs   float64 `json:"p50_lat_ms"`
	P99LatMs   float64 `json:"p99_lat_ms"`
	Committed  uint64  `json:"committed"`
	Errors     uint64  `json:"errors"`     // begins/reads/commits that exhausted the retry budget
	Dropped    uint64  `json:"dropped"`    // frames the chaos layer discarded
	Duplicated uint64  `json:"duplicated"` // extra frame copies it injected
}

// ChaosReport is the machine-readable output of the chaos sweep.
type ChaosReport struct {
	Protocol         string     `json:"protocol"`
	GoMaxProcs       int        `json:"gomaxprocs"`
	NumCPU           int        `json:"num_cpu"`
	DCs              int        `json:"dcs"`
	Partitions       int        `json:"partitions"`
	RequestTimeoutMs float64    `json:"request_timeout_ms"`
	RetryAttempts    int        `json:"retry_attempts"`
	RetryBackoffMs   float64    `json:"retry_backoff_ms"`
	Rows             []ChaosRow `json:"rows"`
}

// RunChaos sweeps the given client-link loss probabilities (fractions in
// [0,1]) on a Wren memory cluster, one fresh cluster per point. The loss
// rule is installed only after the preload, so the fill never races the
// fault injector. threads is the closed-loop count per (DC, partition).
func RunChaos(o Options, points []float64, threads int) (*ChaosReport, error) {
	if len(points) == 0 {
		points = ChaosPoints
	}
	if threads <= 0 {
		threads = 2
	}
	const (
		requestTimeout = time.Second
		retryAttempts  = 5
		retryBackoff   = 2 * time.Millisecond
	)
	rep := &ChaosReport{
		Protocol:         cluster.Wren.String(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		DCs:              o.DCs,
		Partitions:       o.Partitions,
		RequestTimeoutMs: float64(requestTimeout) / float64(time.Millisecond),
		RetryAttempts:    retryAttempts,
		RetryBackoffMs:   float64(retryBackoff) / float64(time.Millisecond),
	}
	for _, loss := range points {
		if loss < 0 || loss > 1 {
			return rep, fmt.Errorf("bench: loss probability %v outside [0,1]", loss)
		}
		eo := o
		eo.StoreBackend = "memory" // the sweep prices the network, not the disk
		ccfg := eo.clusterConfig(cluster.Wren, o.DCs, o.Partitions)
		ccfg.Chaos = true
		ccfg.ChaosSeed = o.Seed
		ccfg.RequestTimeout = requestTimeout
		ccfg.RetryAttempts = retryAttempts
		ccfg.RetryBackoff = retryBackoff
		cl, err := cluster.New(ccfg)
		if err != nil {
			return rep, err
		}
		pTx := 2
		if pTx > o.Partitions {
			pTx = o.Partitions
		}
		w, err := ycsb.NewWorkload(o.workloadConfig(ycsb.Mix95, pTx, o.Partitions))
		if err != nil {
			cl.Close()
			return rep, err
		}
		if err := Preload(cl, w); err != nil {
			cl.Close()
			return rep, err
		}
		for dc := 0; dc < o.DCs; dc++ {
			cl.Chaos().SetClientRule(dc, chaos.Rule{DropProb: loss, DupProb: loss})
		}
		res, err := RunLoadPoint(LoadConfig{
			Cluster: cl, Workload: w, ThreadsPerClient: threads,
			Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
		})
		faults := cl.Chaos().Stats()
		cl.Close()
		if err != nil {
			return rep, fmt.Errorf("chaos loss=%v: %w", loss, err)
		}
		rep.Rows = append(rep.Rows, ChaosRow{
			LossPct:    loss * 100,
			TxPerSec:   res.Throughput,
			MeanLatMs:  res.MeanLatMs,
			P50LatMs:   res.P50LatMs,
			P99LatMs:   res.P99LatMs,
			Committed:  res.Committed,
			Errors:     res.Errors,
			Dropped:    faults.Dropped,
			Duplicated: faults.Duplicated,
		})
	}
	return rep, nil
}

// WriteJSON serializes the report, indented for diffable commits.
func (r *ChaosReport) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatChaos renders the report for humans.
func FormatChaos(r *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep (%s, %dx%d, timeout=%.0fms, retries=%d)\n",
		r.Protocol, r.DCs, r.Partitions, r.RequestTimeoutMs, r.RetryAttempts)
	fmt.Fprintf(&b, "%8s %12s %10s %10s %10s %10s %8s %9s %11s\n",
		"loss%", "tx/s", "mean(ms)", "p50(ms)", "p99(ms)", "committed", "errors", "dropped", "duplicated")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.1f %12.0f %10.2f %10.2f %10.2f %10d %8d %9d %11d\n",
			row.LossPct, row.TxPerSec, row.MeanLatMs, row.P50LatMs, row.P99LatMs,
			row.Committed, row.Errors, row.Dropped, row.Duplicated)
	}
	return b.String()
}
