package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"wren/internal/cluster"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/ycsb"
)

// VisibilityResult holds Figure 7b's data for one protocol: CDFs of local
// and remote update visibility latency. The visibility latency of an update
// X in DC_i is the wall-clock difference between when X becomes visible in
// DC_i and when X committed in its origin DC.
type VisibilityResult struct {
	Protocol  string
	LocalCDF  []stats.CDFPoint
	RemoteCDF []stats.CDFPoint
	LocalMean float64 // µs
	RemoteP99 float64 // µs (the paper quotes worst-case remote latency)
	Samples   int
}

// VisibilityConfig parameterizes the probe run.
type VisibilityConfig struct {
	Options Options
	// Protocol to probe.
	Protocol cluster.Protocol
	// ProbeEvery is the marker-commit period.
	ProbeEvery time.Duration
	// Duration bounds the probing phase.
	Duration time.Duration
	// BackgroundThreads adds workload noise during probing (0 = quiet).
	BackgroundThreads int
	// UseAWSLatencies selects the paper's 5-region WAN matrix.
	UseAWSLatencies bool
}

// RunVisibility measures update visibility latency: a prober client in
// DC 0 commits marker transactions; monitors in every DC poll the marker's
// partition until the update becomes visible there, producing the local
// (origin-DC) and remote CDFs of Figure 7b.
func RunVisibility(vc VisibilityConfig) (VisibilityResult, error) {
	o := vc.Options
	if vc.ProbeEvery == 0 {
		vc.ProbeEvery = 20 * time.Millisecond
	}
	if vc.Duration == 0 {
		vc.Duration = 5 * time.Second
	}
	ccfg := o.clusterConfig(vc.Protocol, o.DCs, o.Partitions)
	ccfg.UseAWSLatencies = vc.UseAWSLatencies
	cl, err := cluster.New(ccfg)
	if err != nil {
		return VisibilityResult{}, err
	}
	defer cl.Close()

	pTx := 4
	if pTx > o.Partitions {
		pTx = o.Partitions
	}
	w, err := ycsb.NewWorkload(o.workloadConfig(ycsb.Mix95, pTx, o.Partitions))
	if err != nil {
		return VisibilityResult{}, err
	}
	if err := Preload(cl, w); err != nil {
		return VisibilityResult{}, err
	}

	// Optional background load.
	stopBG := make(chan struct{})
	var bgWG sync.WaitGroup
	if vc.BackgroundThreads > 0 {
		for dc := 0; dc < o.DCs; dc++ {
			for t := 0; t < vc.BackgroundThreads; t++ {
				client, err := cl.NewClient(dc, t%o.Partitions)
				if err != nil {
					return VisibilityResult{}, err
				}
				gen := w.NewGenerator(o.Seed + int64(dc*1000+t))
				bgWG.Add(1)
				go func(client cluster.Client, gen *ycsb.Generator) {
					defer bgWG.Done()
					defer client.Close()
					for {
						select {
						case <-stopBG:
							return
						default:
						}
						plan := gen.Next()
						tx, err := client.Begin()
						if err != nil {
							continue
						}
						if len(plan.ReadKeys) > 0 {
							if _, err := tx.Read(plan.ReadKeys...); err != nil {
								_ = tx.Abort()
								continue
							}
						}
						for _, wr := range plan.Writes {
							_ = tx.Write(wr.Key, wr.Value)
						}
						_, _ = tx.Commit()
					}
				}(client, gen)
			}
		}
	}
	defer func() {
		close(stopBG)
		bgWG.Wait()
	}()

	prober, err := cl.NewClient(0, 0)
	if err != nil {
		return VisibilityResult{}, err
	}
	defer prober.Close()

	markerKey := "visibility-marker"
	markerPartition := sharding.PartitionOf(markerKey, o.Partitions)

	localHist := stats.NewHistogram()
	remoteHist := stats.NewHistogram()
	samples := 0
	deadline := time.Now().Add(vc.Duration)
	for time.Now().Before(deadline) {
		tx, err := prober.Begin()
		if err != nil {
			return VisibilityResult{}, err
		}
		if err := tx.Write(markerKey, []byte(fmt.Sprintf("m%d", samples))); err != nil {
			return VisibilityResult{}, err
		}
		ct, err := tx.Commit()
		if err != nil {
			return VisibilityResult{}, err
		}
		committedAt := time.Now()
		samples++

		// Wait until visible in every DC, recording per-DC latency.
		var wg sync.WaitGroup
		for dc := 0; dc < o.DCs; dc++ {
			wg.Add(1)
			go func(dc int) {
				defer wg.Done()
				for {
					var visible bool
					if dc == 0 {
						visible = cl.LocalUpdateVisible(0, markerPartition, ct)
					} else {
						visible = cl.RemoteUpdateVisible(dc, markerPartition, 0, ct)
					}
					if visible {
						lat := time.Since(committedAt)
						if dc == 0 {
							localHist.RecordDuration(lat)
						} else {
							remoteHist.RecordDuration(lat)
						}
						return
					}
					if time.Since(committedAt) > 10*time.Second {
						return // give up on this sample; partition-level stall
					}
					time.Sleep(200 * time.Microsecond)
				}
			}(dc)
		}
		wg.Wait()
		time.Sleep(vc.ProbeEvery)
	}

	return VisibilityResult{
		Protocol:  vc.Protocol.String(),
		LocalCDF:  localHist.CDF(20),
		RemoteCDF: remoteHist.CDF(20),
		LocalMean: localHist.Mean(),
		RemoteP99: float64(remoteHist.Percentile(99)),
		Samples:   samples,
	}, nil
}

// FormatVisibility renders Figure 7b-style CDF tables.
func FormatVisibility(title string, results []VisibilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, r := range results {
		fmt.Fprintf(&b, "%s (%d samples): local mean %s, remote p99 %s\n",
			r.Protocol, r.Samples,
			stats.FormatMicros(int64(r.LocalMean)), stats.FormatMicros(int64(r.RemoteP99)))
		fmt.Fprintf(&b, "  local CDF:")
		for _, pt := range r.LocalCDF {
			fmt.Fprintf(&b, " %.2f@%s", pt.Fraction, stats.FormatMicros(pt.Value))
		}
		fmt.Fprintf(&b, "\n  remote CDF:")
		for _, pt := range r.RemoteCDF {
			fmt.Fprintf(&b, " %.2f@%s", pt.Fraction, stats.FormatMicros(pt.Value))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
