// Benchmarks regenerating every figure of the paper's evaluation (§V).
//
// Each benchmark runs a reduced version of the corresponding experiment
// (smaller topology, shorter measurement window) and reports the figure's
// headline metrics through testing.B custom metrics. Full-scale sweeps with
// paper-matching topologies run via cmd/wren-bench, e.g.:
//
//	go run ./cmd/wren-bench -figure 3a
//
// Expected shapes (paper → this reproduction):
//   - Fig 3a: Wren's latency below H-Cure below Cure at equal load;
//     Wren's peak throughput above both.
//   - Fig 3b: Cure/H-Cure mean blocking time in the milliseconds range,
//     growing with load; Wren blocking identically zero.
//   - Fig 4/5: the same ordering across r:w mixes and partitions/tx.
//   - Fig 6: Wren/Cure throughput ratio ≥ 1, growing with partitions, DCs
//     and write intensity.
//   - Fig 7a: Wren moves fewer replication and stabilization bytes.
//   - Fig 7b: Wren local visibility a few ms (vs ~ΔR for Cure); Wren
//     remote visibility slightly above Cure's.
package wren

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"wren/internal/bench"
	"wren/internal/cluster"
	"wren/internal/ycsb"
)

// benchOptions is the reduced configuration used by the testing.B entry
// points: 3 DCs x 4 partitions so a full protocol sweep stays in CI budget.
func benchOptions() bench.Options {
	o := bench.SmokeOptions()
	o.DCs = 3
	o.Partitions = 4
	o.Threads = []int{1, 4}
	o.FixedThreads = 2
	o.Warmup = 400 * time.Millisecond
	o.Measure = 2 * time.Second
	return o
}

// reportSweep publishes a latency-throughput sweep as benchmark metrics.
func reportSweep(b *testing.B, series []bench.Series) {
	b.Helper()
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Throughput, s.Protocol+"_tx/s")
		b.ReportMetric(last.MeanLatMs, s.Protocol+"_ms/tx")
		if s.Protocol != "Wren" {
			b.ReportMetric(last.MeanBlockMs, s.Protocol+"_blkms")
		}
	}
	b.Logf("\n%s", bench.FormatSeries(b.Name(), series))
}

func runSweepBenchmark(b *testing.B, mix ycsb.Mix, partitionsPerTx int) {
	b.Helper()
	o := benchOptions()
	if partitionsPerTx > o.Partitions {
		partitionsPerTx = o.Partitions
	}
	for i := 0; i < b.N; i++ {
		series, err := bench.SweepProtocols(o, mix, partitionsPerTx)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweep(b, series)
		}
	}
}

// BenchmarkFig3aThroughputLatency regenerates Figure 3a: throughput vs
// average transaction latency for Wren, H-Cure and Cure on the default
// workload (95:5 r:w, 4 partitions per transaction).
func BenchmarkFig3aThroughputLatency(b *testing.B) {
	runSweepBenchmark(b, ycsb.Mix95, 4)
}

// BenchmarkFig3bBlockingTime regenerates Figure 3b: the mean blocking time
// of blocked transactions in Cure and H-Cure (Wren never blocks).
func BenchmarkFig3bBlockingTime(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		series, err := bench.SweepProtocols(o, ycsb.Mix95, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		for _, s := range series {
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.MeanBlockMs, s.Protocol+"_blkms")
			b.ReportMetric(last.BlockedShare*100, s.Protocol+"_blk%")
			if s.Protocol == "Wren" && last.BlockedShare != 0 {
				b.Fatalf("Wren blocked: %f", last.BlockedShare)
			}
		}
		b.Logf("\n%s", bench.FormatSeries("Fig 3b (blocking)", series))
	}
}

// BenchmarkFig4aWorkload9010 regenerates Figure 4a (90:10 r:w ratio).
func BenchmarkFig4aWorkload9010(b *testing.B) {
	runSweepBenchmark(b, ycsb.Mix90, 4)
}

// BenchmarkFig4bWorkload5050 regenerates Figure 4b (50:50 r:w ratio).
func BenchmarkFig4bWorkload5050(b *testing.B) {
	runSweepBenchmark(b, ycsb.Mix50, 4)
}

// BenchmarkFig5aPartitionsPerTx2 regenerates Figure 5a (p=2).
func BenchmarkFig5aPartitionsPerTx2(b *testing.B) {
	runSweepBenchmark(b, ycsb.Mix95, 2)
}

// BenchmarkFig5bPartitionsPerTx8 regenerates Figure 5b (p=8; clamped to the
// benchmark topology's partition count).
func BenchmarkFig5bPartitionsPerTx8(b *testing.B) {
	runSweepBenchmark(b, ycsb.Mix95, 8)
}

// BenchmarkFig6aScaleOutPartitions regenerates Figure 6a: Wren's throughput
// normalized to Cure when scaling partitions per DC.
func BenchmarkFig6aScaleOutPartitions(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunFig6a(o, []int{2, 4}, []ycsb.Mix{ycsb.Mix95, ycsb.Mix50})
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		for _, c := range cells {
			b.ReportMetric(c.Ratio, "ratio_"+metricLabel(c.Label))
		}
		b.Logf("\n%s", bench.FormatRatios("Fig 6a (normalized throughput)", cells))
	}
}

// BenchmarkFig6bScaleDCs regenerates Figure 6b: Wren normalized to Cure
// when scaling the number of DCs.
func BenchmarkFig6bScaleDCs(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunFig6b(o, []int{3, 5}, o.Partitions, []ycsb.Mix{ycsb.Mix95})
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		for _, c := range cells {
			b.ReportMetric(c.Ratio, "ratio_"+metricLabel(c.Label))
		}
		b.Logf("\n%s", bench.FormatRatios("Fig 6b (normalized throughput)", cells))
	}
}

// BenchmarkFig7aMetadataBytes regenerates Figure 7a: replication and
// stabilization traffic of Wren normalized to Cure.
func BenchmarkFig7aMetadataBytes(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		results, err := bench.RunFig7a(o, []int{3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		byDC := map[int]map[string]bench.TrafficResult{}
		for _, r := range results {
			if byDC[r.DCs] == nil {
				byDC[r.DCs] = map[string]bench.TrafficResult{}
			}
			byDC[r.DCs][r.Protocol] = r
		}
		for dcs, m := range byDC {
			w, c := m["Wren"], m["Cure"]
			if c.ReplBytesPerTx > 0 {
				b.ReportMetric(w.ReplBytesPerTx/c.ReplBytesPerTx,
					"repl_ratio_"+itoa(dcs)+"DC")
			}
			if c.StabBytesPerSecond > 0 {
				b.ReportMetric(w.StabBytesPerSecond/c.StabBytesPerSecond,
					"stab_ratio_"+itoa(dcs)+"DC")
			}
		}
		b.Logf("\n%s", bench.FormatTraffic("Fig 7a (traffic)", results))
	}
}

// BenchmarkFig7bVisibilityLatency regenerates Figure 7b: the CDF of local
// and remote update visibility latency for Wren and Cure.
func BenchmarkFig7bVisibilityLatency(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		var results []bench.VisibilityResult
		for _, proto := range []cluster.Protocol{cluster.Wren, cluster.Cure} {
			res, err := bench.RunVisibility(bench.VisibilityConfig{
				Options:    o,
				Protocol:   proto,
				ProbeEvery: 10 * time.Millisecond,
				Duration:   2 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
		}
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			b.ReportMetric(r.LocalMean/1000, r.Protocol+"_localms")
			b.ReportMetric(r.RemoteP99/1000, r.Protocol+"_remp99ms")
		}
		b.Logf("\n%s", bench.FormatVisibility("Fig 7b (visibility)", results))
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

// metricLabel makes a figure-cell label safe for testing.B metric units
// (no whitespace allowed).
func metricLabel(s string) string { return strings.ReplaceAll(s, " ", "_") }
