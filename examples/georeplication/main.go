// Geo-replication walkthrough on the paper's 5-region AWS topology:
// update visibility across continents, last-writer-wins convergence under
// concurrent conflicting writes, and availability during an inter-DC
// network partition.
//
//	go run ./examples/georeplication
package main

import (
	"fmt"
	"log"
	"time"

	"wren"
)

var regions = []string{"Virginia", "Oregon", "Ireland", "Mumbai", "Sydney"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := wren.NewCluster(wren.Config{
		NumDCs:          5,
		NumPartitions:   4,
		UseAWSLatencies: true,
		ClockSkew:       time.Millisecond,
		ApplyInterval:   3 * time.Millisecond,
		GossipInterval:  3 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	if err := visibilityTour(cluster); err != nil {
		return err
	}
	if err := convergence(cluster); err != nil {
		return err
	}
	return partitionTolerance(cluster)
}

// visibilityTour commits in Virginia and times visibility everywhere.
func visibilityTour(cluster *wren.Cluster) error {
	fmt.Println("== update visibility across regions (committed in Virginia) ==")
	client, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer client.Close()

	tx, err := client.Begin()
	if err != nil {
		return err
	}
	_ = tx.Write("announcement", []byte("launch!"))
	ct, err := tx.Commit()
	if err != nil {
		return err
	}
	start := time.Now()
	for dc := 0; dc < cluster.NumDCs(); dc++ {
		for {
			var visible bool
			if dc == 0 {
				visible = cluster.LocalUpdateVisible(dc, "announcement", ct)
			} else {
				visible = cluster.RemoteUpdateVisible(dc, "announcement", 0, ct)
			}
			if visible {
				fmt.Printf("  %-10s visible after %v\n", regions[dc],
					time.Since(start).Round(time.Millisecond))
				break
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	fmt.Println("  (remote visibility is gated by BiST: an update is remote-visible only")
	fmt.Println("   when updates from ALL remote DCs up to its dependency time arrived)")
	return nil
}

// convergence issues concurrent conflicting writes from every region and
// shows all replicas agree via last-writer-wins.
func convergence(cluster *wren.Cluster) error {
	fmt.Println("== concurrent conflicting writes converge (last-writer-wins) ==")
	cts := make([]wren.Timestamp, cluster.NumDCs())
	for dc := 0; dc < cluster.NumDCs(); dc++ {
		client, err := cluster.Client(dc)
		if err != nil {
			return err
		}
		tx, err := client.Begin()
		if err != nil {
			client.Close()
			return err
		}
		_ = tx.Write("capital", []byte(regions[dc]))
		ct, err := tx.Commit()
		client.Close()
		if err != nil {
			return err
		}
		cts[dc] = ct
		fmt.Printf("  %-10s wrote capital=%q at %v\n", regions[dc], regions[dc], ct)
	}

	// Wait until every write is visible everywhere, then read from each DC.
	deadline := time.Now().Add(30 * time.Second)
	for dc := 0; dc < cluster.NumDCs(); dc++ {
		for src := 0; src < cluster.NumDCs(); src++ {
			for {
				var visible bool
				if src == dc {
					visible = cluster.LocalUpdateVisible(dc, "capital", cts[src])
				} else {
					visible = cluster.RemoteUpdateVisible(dc, "capital", src, cts[src])
				}
				if visible {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("write from DC%d never visible in DC%d", src, dc)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	var agreed string
	for dc := 0; dc < cluster.NumDCs(); dc++ {
		client, err := cluster.Client(dc)
		if err != nil {
			return err
		}
		tx, err := client.Begin()
		if err != nil {
			client.Close()
			return err
		}
		got, err := tx.Read("capital")
		if err != nil {
			client.Close()
			return err
		}
		_, _ = tx.Commit()
		client.Close()
		v := string(got["capital"])
		fmt.Printf("  %-10s reads capital=%q\n", regions[dc], v)
		if agreed == "" {
			agreed = v
		} else if v != agreed {
			return fmt.Errorf("DIVERGENCE: %q vs %q", v, agreed)
		}
	}
	fmt.Printf("  all regions converged on %q\n", agreed)
	return nil
}

// partitionTolerance cuts Virginia off from Sydney and shows both keep
// serving transactions; replication resumes after healing.
func partitionTolerance(cluster *wren.Cluster) error {
	fmt.Println("== availability under an inter-DC partition (Virginia <-> Sydney) ==")
	cluster.PartitionInterDCLink(0, 4, true)

	virginia, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer virginia.Close()
	sydney, err := cluster.Client(4)
	if err != nil {
		return err
	}
	defer sydney.Close()

	start := time.Now()
	tx, err := virginia.Begin()
	if err != nil {
		return err
	}
	_ = tx.Write("status:virginia", []byte("open"))
	ct, err := tx.Commit()
	if err != nil {
		return err
	}
	fmt.Printf("  Virginia committed during partition in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	stx, err := sydney.Begin()
	if err != nil {
		return err
	}
	_ = stx.Write("status:sydney", []byte("open"))
	if _, err := stx.Commit(); err != nil {
		return err
	}
	fmt.Printf("  Sydney committed during partition in %v\n", time.Since(start).Round(time.Millisecond))

	cluster.PartitionInterDCLink(0, 4, false)
	start = time.Now()
	for !cluster.RemoteUpdateVisible(4, "status:virginia", 0, ct) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("  after healing, Virginia's write reached Sydney in %v\n",
		time.Since(start).Round(time.Millisecond))
	return nil
}
