// Banking example: concurrent multi-partition transfers audited by a
// read-only checker.
//
// Every transfer debits one account and credits another inside a single
// transaction. Because TCC transactions read from a causal snapshot and
// writes are atomic, an auditor summing all balances never observes money
// created or destroyed mid-transfer — even though accounts live on
// different partitions and transfers run concurrently with the audit.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"wren"
)

const (
	accounts       = 16
	initialBalance = 1000
	transfers      = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func accountKey(i int) string { return fmt.Sprintf("account:%04d", i) }

func run() error {
	cluster, err := wren.NewCluster(wren.Config{
		NumDCs:         1,
		NumPartitions:  8,
		ApplyInterval:  time.Millisecond,
		GossipInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	teller, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer teller.Close()

	// Open all accounts in one atomic transaction.
	tx, err := teller.Begin()
	if err != nil {
		return err
	}
	keys := make([]string, accounts)
	for i := 0; i < accounts; i++ {
		keys[i] = accountKey(i)
		_ = tx.Write(keys[i], []byte(strconv.Itoa(initialBalance)))
	}
	ct, err := tx.Commit()
	if err != nil {
		return err
	}
	// Wait until the opening transaction is inside the local stable
	// snapshot, so the auditor (a different session) sees every account.
	for !cluster.LocalUpdateVisible(0, keys[0], ct) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("opened %d accounts with %d each (total %d) across %d partitions\n",
		accounts, initialBalance, accounts*initialBalance, cluster.NumPartitions())

	// Transfers race with audits.
	transferDone := make(chan error, 1)
	go func() { transferDone <- runTransfers(teller) }()

	auditor, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer auditor.Close()

	audits := 0
	for {
		select {
		case err := <-transferDone:
			if err != nil {
				return err
			}
			total, err := audit(auditor, keys)
			if err != nil {
				return err
			}
			fmt.Printf("final audit: total=%d after %d transfers and %d concurrent audits\n",
				total, transfers, audits)
			if total != accounts*initialBalance {
				return fmt.Errorf("MONEY LEAK: total %d != %d", total, accounts*initialBalance)
			}
			return nil
		default:
		}
		total, err := audit(auditor, keys)
		if err != nil {
			return err
		}
		if total != accounts*initialBalance {
			return fmt.Errorf("MONEY LEAK mid-run: total %d != %d (audit %d)",
				total, accounts*initialBalance, audits)
		}
		audits++
	}
}

// runTransfers moves random amounts between random account pairs. Each
// transfer reads both balances and writes both updates in one transaction.
func runTransfers(client wren.Client) error {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < transfers; i++ {
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		if from == to {
			continue
		}
		tx, err := client.Begin()
		if err != nil {
			return err
		}
		got, err := tx.Read(accountKey(from), accountKey(to))
		if err != nil {
			return err
		}
		fromBal, err := strconv.Atoi(string(got[accountKey(from)]))
		if err != nil {
			return fmt.Errorf("parse balance: %w", err)
		}
		toBal, err := strconv.Atoi(string(got[accountKey(to)]))
		if err != nil {
			return fmt.Errorf("parse balance: %w", err)
		}
		amount := rng.Intn(50) + 1
		if fromBal < amount {
			if err := tx.Abort(); err != nil {
				return err
			}
			continue
		}
		_ = tx.Write(accountKey(from), []byte(strconv.Itoa(fromBal-amount)))
		_ = tx.Write(accountKey(to), []byte(strconv.Itoa(toBal+amount)))
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// audit sums all balances in one read-only transaction (a causal snapshot).
func audit(client wren.Client, keys []string) (int, error) {
	tx, err := client.Begin()
	if err != nil {
		return 0, err
	}
	got, err := tx.Read(keys...)
	if err != nil {
		return 0, err
	}
	if _, err := tx.Commit(); err != nil {
		return 0, err
	}
	total := 0
	for _, k := range keys {
		v, err := strconv.Atoi(string(got[k]))
		if err != nil {
			return 0, fmt.Errorf("parse %s: %w", k, err)
		}
		total += v
	}
	return total, nil
}
