// Social network scenarios from the paper's motivation (§II-C):
//
//  1. The photo-album anomaly: Alice removes Bob from her album's access
//     list and then adds a private photo. Because transactions read from a
//     causal snapshot, Bob can never observe the new photo together with
//     the old permissions.
//
//  2. Symmetric friendship: becoming friends writes both adjacency entries
//     in one transaction; atomic visibility means no observer ever sees a
//     one-directional friendship.
//
//     go run ./examples/social
package main

import (
	"fmt"
	"log"
	"time"

	"wren"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := wren.NewCluster(wren.Config{
		NumDCs:         2,
		NumPartitions:  4,
		InterDCLatency: 15 * time.Millisecond,
		ApplyInterval:  2 * time.Millisecond,
		GossipInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	if err := photoAlbumScenario(cluster); err != nil {
		return err
	}
	return friendshipScenario(cluster)
}

// photoAlbumScenario replays COPS' classic anomaly and shows it cannot
// happen under TCC.
func photoAlbumScenario(cluster *wren.Cluster) error {
	fmt.Println("== photo album (causal snapshot prevents the ACL anomaly) ==")
	alice, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := cluster.Client(1)
	if err != nil {
		return err
	}
	defer bob.Close()

	// Initial state: Bob is on the ACL; the album has one public photo.
	tx, err := alice.Begin()
	if err != nil {
		return err
	}
	_ = tx.Write("album:acl", []byte("alice,bob"))
	_ = tx.Write("album:photos", []byte("beach.jpg"))
	ct, err := tx.Commit()
	if err != nil {
		return err
	}
	waitRemoteVisible(cluster, 1, "album:acl", 0, ct)

	// Alice removes Bob, THEN adds a private photo (two transactions; the
	// second causally depends on the first).
	tx, err = alice.Begin()
	if err != nil {
		return err
	}
	_ = tx.Write("album:acl", []byte("alice"))
	if _, err := tx.Commit(); err != nil {
		return err
	}
	tx, err = alice.Begin()
	if err != nil {
		return err
	}
	_ = tx.Write("album:photos", []byte("beach.jpg,private.jpg"))
	ctPhoto, err := tx.Commit()
	if err != nil {
		return err
	}

	// Bob polls from DC 1. Under causal consistency, whenever he sees the
	// private photo, he must also see the restricted ACL.
	deadline := time.Now().Add(10 * time.Second)
	for {
		btx, err := bob.Begin()
		if err != nil {
			return err
		}
		got, err := btx.Read("album:acl", "album:photos")
		if err != nil {
			return err
		}
		if _, err := btx.Commit(); err != nil {
			return err
		}
		photos, acl := string(got["album:photos"]), string(got["album:acl"])
		if containsPrivate(photos) {
			if acl != "alice" {
				return fmt.Errorf("ANOMALY: Bob saw %q with stale ACL %q", photos, acl)
			}
			fmt.Printf("Bob sees %q only together with ACL %q — anomaly impossible\n", photos, acl)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("photo never became visible in DC1")
		}
		_ = ctPhoto
		time.Sleep(2 * time.Millisecond)
	}
}

// friendshipScenario shows atomic multi-item writes (both friendship edges
// or neither).
func friendshipScenario(cluster *wren.Cluster) error {
	fmt.Println("== symmetric friendship (atomic multi-partition writes) ==")
	writer, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer writer.Close()
	observer, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer observer.Close()

	carolKey, daveKey := "friends:carol", "friends:dave"
	fmt.Printf("(%q on partition %d, %q on partition %d)\n",
		carolKey, wren.PartitionOf(carolKey, cluster.NumPartitions()),
		daveKey, wren.PartitionOf(daveKey, cluster.NumPartitions()))

	done := make(chan error, 1)
	go func() {
		// Carol and Dave befriend and un-befriend repeatedly.
		for i := 0; i < 50; i++ {
			state := []byte("yes")
			if i%2 == 1 {
				state = []byte("no")
			}
			tx, err := writer.Begin()
			if err != nil {
				done <- err
				return
			}
			_ = tx.Write(carolKey, state)
			_ = tx.Write(daveKey, state)
			if _, err := tx.Commit(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	checks := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				return err
			}
			fmt.Printf("checked %d snapshots: friendship always symmetric\n", checks)
			return nil
		default:
		}
		tx, err := observer.Begin()
		if err != nil {
			return err
		}
		got, err := tx.Read(carolKey, daveKey)
		if err != nil {
			return err
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
		c, d := string(got[carolKey]), string(got[daveKey])
		if c != d {
			return fmt.Errorf("ASYMMETRY: carol=%q dave=%q", c, d)
		}
		checks++
	}
}

func containsPrivate(photos string) bool {
	return len(photos) > len("beach.jpg")
}

func waitRemoteVisible(cluster *wren.Cluster, dc int, key string, srcDC int, ct wren.Timestamp) {
	for !cluster.RemoteUpdateVisible(dc, key, srcDC, ct) {
		time.Sleep(time.Millisecond)
	}
}
