// Quickstart: start an embedded 2-DC Wren cluster, run a few interactive
// read-write transactions, and watch an update become visible locally and
// remotely.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"wren"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := wren.NewCluster(wren.Config{
		NumDCs:         2,
		NumPartitions:  4,
		InterDCLatency: 20 * time.Millisecond,
		ApplyInterval:  2 * time.Millisecond,
		GossipInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	client, err := cluster.Client(0)
	if err != nil {
		return err
	}
	defer client.Close()

	// A read-write transaction: both writes become visible atomically.
	tx, err := client.Begin()
	if err != nil {
		return err
	}
	if err := tx.Write("greeting", []byte("hello")); err != nil {
		return err
	}
	if err := tx.Write("audience", []byte("world")); err != nil {
		return err
	}
	ct, err := tx.Commit()
	if err != nil {
		return err
	}
	fmt.Printf("committed greeting+audience at timestamp %v\n", ct)

	// Read-your-writes: the same session sees its writes immediately, even
	// before the cluster-wide stable snapshot catches up (CANToR's
	// client-side cache).
	tx2, err := client.Begin()
	if err != nil {
		return err
	}
	got, err := tx2.Read("greeting", "audience")
	if err != nil {
		return err
	}
	fmt.Printf("same session reads: %s, %s (nonblocking, blocked=%v)\n",
		got["greeting"], got["audience"], tx2.Blocked())
	if _, err := tx2.Commit(); err != nil {
		return err
	}

	// Watch visibility propagate: first within DC 0 (the local stable
	// snapshot needs one stabilization round), then across the WAN to DC 1.
	start := time.Now()
	for !cluster.LocalUpdateVisible(0, "greeting", ct) {
		time.Sleep(500 * time.Microsecond)
	}
	fmt.Printf("visible in DC0 (all partitions) after %v\n", time.Since(start).Round(time.Millisecond))
	for !cluster.RemoteUpdateVisible(1, "greeting", 0, ct) {
		time.Sleep(500 * time.Microsecond)
	}
	fmt.Printf("visible in DC1 after %v (WAN latency + stabilization)\n",
		time.Since(start).Round(time.Millisecond))

	// A fresh client in DC 1 now reads the values from its own DC.
	remote, err := cluster.Client(1)
	if err != nil {
		return err
	}
	defer remote.Close()
	tx3, err := remote.Begin()
	if err != nil {
		return err
	}
	got, err = tx3.Read("greeting", "audience")
	if err != nil {
		return err
	}
	fmt.Printf("DC1 reads: %s, %s\n", got["greeting"], got["audience"])
	if _, err := tx3.Commit(); err != nil {
		return err
	}
	return nil
}
