package wren

import (
	"fmt"
	"testing"
	"time"
)

// TestClusterRestartRecovery is the acceptance test for the durable
// backends: a cluster stopped and restarted from the same data directory
// must serve every transaction committed before the stop — and deletes
// must stay deleted — whichever durable engine is underneath.
func TestClusterRestartRecovery(t *testing.T) {
	for _, backend := range []string{"wal", "sst"} {
		t.Run(backend, func(t *testing.T) { testClusterRestartRecovery(t, backend) })
	}
}

func testClusterRestartRecovery(t *testing.T, backend string) {
	dataDir := t.TempDir()
	cfg := Config{
		NumDCs:        1,
		NumPartitions: 2,
		StoreBackend:  backend,
		DataDir:       dataDir,
		FsyncPolicy:   "always",
	}

	want := map[string]string{}
	// First life: commit a handful of transactions spread over both
	// partitions, including an overwrite and a delete.
	func() {
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer cl.Close()
		client, err := cl.Client(0)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()

		for i := 0; i < 8; i++ {
			tx, err := client.Begin()
			if err != nil {
				t.Fatal(err)
			}
			k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
			if err := tx.Write(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatalf("commit %s: %v", k, err)
			}
			want[k] = v
		}
		// Overwrite one key and delete another.
		tx, err := client.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write("key-0", []byte("val-0-updated")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Delete("key-1"); err != nil {
			t.Fatal(err)
		}
		ct, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		want["key-0"] = "val-0-updated"
		delete(want, "key-1")

		// Wait until the last commit is applied (and therefore logged)
		// before stopping; Close then flushes the rest.
		deadline := time.Now().Add(10 * time.Second)
		for !cl.LocalUpdateVisible(0, "key-0", ct) {
			if time.Now().After(deadline) {
				t.Fatal("final commit did not become visible before shutdown")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Second life: reopen from the same directory and read it all back.
	verify := func(life string) {
		cl, err := NewCluster(cfg)
		if err != nil {
			t.Fatalf("%s NewCluster: %v", life, err)
		}
		defer cl.Close()
		client, err := cl.Client(0)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()

		keys := make([]string, 0, len(want)+1)
		for k := range want {
			keys = append(keys, k)
		}
		keys = append(keys, "key-1") // the deleted key: must stay absent

		// The restarted servers' stable times start at zero and catch up
		// with the clock within a few protocol ticks; retry until the
		// recovered state is inside the snapshot.
		deadline := time.Now().Add(10 * time.Second)
		for {
			tx, err := client.Begin()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tx.Read(keys...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			ok := len(got) == len(want)
			for k, v := range want {
				if string(got[k]) != v {
					ok = false
				}
			}
			if _, resurrected := got["key-1"]; resurrected {
				t.Fatalf("%s: deleted key-1 resurrected with %q", life, got["key-1"])
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: recovered state incomplete: got %d/%d keys: %v", life, len(got), len(want), got)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	verify("first restart")
	// A third life proves post-recovery appends land in the same logs.
	verify("second restart")
}

// TestClusterMemoryBackendForgets pins the baseline the WAL backend is
// fixing: the default memory backend starts empty after a restart.
func TestClusterMemoryBackendForgets(t *testing.T) {
	cfg := Config{NumDCs: 1, NumPartitions: 1}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := cl.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := client.Begin()
	_ = tx.Write("k", []byte("v"))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	cl.Close()

	cl2, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	client2, err := cl2.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	tx2, _ := client2.Begin()
	got, err := tx2.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["k"]; ok {
		t.Error("memory backend served a value across restarts; expected amnesia")
	}
}
