module wren

go 1.24
